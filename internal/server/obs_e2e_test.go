package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/progcache"
	"repro/internal/runtime"
)

// enableObs flips engine observability on for one test and restores the
// prior state (plus a clean span window) afterwards. The process-wide
// ring cache is emptied too: a ring cached by an earlier (unmetered) test
// would otherwise skip compile.Ring here and starve the compile counters
// this file asserts on.
func enableObs(t *testing.T) {
	t.Helper()
	prev := obs.Enabled()
	obs.SetEnabled(true)
	obs.ResetSpans()
	progcache.DefaultRings.Reset()
	t.Cleanup(func() { obs.SetEnabled(prev); obs.ResetSpans() })
}

func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, body := getJSON(t, url+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	return string(body)
}

// seriesValue finds a series by exact name{labels} prefix and returns its
// value; -1 when absent.
func seriesValue(scrape, series string) float64 {
	for _, line := range strings.Split(scrape, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				return -1
			}
			return v
		}
	}
	return -1
}

// TestMetricsExposeEngineSeries is the tentpole's end-to-end proof: run a
// project whose green-flag script fans out through parallelMap, then
// scrape /metrics and find the engine-side evidence — the pool job, the
// compile-tier decision, and the governed session — merged into the same
// exposition as the snapserved_* serving metrics.
func TestMetricsExposeEngineSeries(t *testing.T) {
	enableObs(t)
	ts := newTestServer(t, Config{})

	jobsBefore := seriesValue(scrape(t, ts.URL), `engine_pool_jobs_total{op="map"}`)
	sessionsBefore := seriesValue(scrape(t, ts.URL), `engine_sessions_total`)

	resp, body := postJSON(t, ts.URL+"/v1/run", RunRequest{Project: parallelSrc})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: status %d, body %s", resp.StatusCode, body)
	}
	var rr RunResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Status != runtime.StatusOK {
		t.Fatalf("session status = %s (%s)", rr.Status, rr.Error)
	}

	out := scrape(t, ts.URL)
	if !strings.Contains(out, "snapserved_requests_total") {
		t.Errorf("serving metrics missing from merged scrape")
	}
	if got := seriesValue(out, `engine_pool_jobs_total{op="map"}`); got < jobsBefore+1 {
		t.Errorf("engine_pool_jobs_total{op=map} = %g, want > %g after a parallelMap run", got, jobsBefore)
	}
	if got := seriesValue(out, `engine_sessions_total`); got < sessionsBefore+1 {
		t.Errorf("engine_sessions_total = %g, want > %g", got, sessionsBefore)
	}
	if got := seriesValue(out, `engine_compile_hits_total`); got < 1 {
		t.Errorf("engine_compile_hits_total = %g, want >= 1 (the lambda compiles)", got)
	}
	if !strings.Contains(out, "engine_pool_chunk_seconds_bucket") {
		t.Errorf("chunk duration histogram missing from scrape")
	}
}

// promLine matches one Prometheus text-format sample:
// name{labels} value — value integer, float, or %g scientific notation.
var promLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? -?[0-9]+(\.[0-9]+)?([eE][-+]?[0-9]+)?$`)

// TestMetricsLineFormat walks every line of a post-traffic scrape and
// holds it to the exposition grammar: only HELP/TYPE comments and
// well-formed samples, each sample name under a known prefix, no
// duplicate (name, labels) pair.
func TestMetricsLineFormat(t *testing.T) {
	enableObs(t)
	ts := newTestServer(t, Config{})
	if resp, body := postJSON(t, ts.URL+"/v1/run", RunRequest{Project: parallelSrc}); resp.StatusCode != http.StatusOK {
		t.Fatalf("run: status %d, body %s", resp.StatusCode, body)
	}

	seen := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(scrape(t, ts.URL)))
	lines := 0
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		lines++
		if !promLine.MatchString(line) {
			t.Fatalf("malformed sample line: %q", line)
		}
		series := line[:strings.LastIndexByte(line, ' ')]
		name, _, _ := strings.Cut(series, "{")
		if !strings.HasPrefix(name, "snapserved_") && !strings.HasPrefix(name, "engine_") {
			t.Errorf("series %q outside known prefixes", name)
		}
		if seen[series] {
			t.Errorf("duplicate series %q", series)
		}
		seen[series] = true
	}
	if lines == 0 {
		t.Fatal("empty scrape")
	}
}

// TestMetricsScrapeStable pins rendering determinism end to end: with no
// traffic between them, two scrapes must be byte-identical — the /metrics
// route is deliberately uninstrumented, and every layer of the render
// sorts its keys. Any nondeterministic map iteration would flake here.
func TestMetricsScrapeStable(t *testing.T) {
	enableObs(t)
	ts := newTestServer(t, Config{})
	if resp, body := postJSON(t, ts.URL+"/v1/run", RunRequest{Project: parallelSrc}); resp.StatusCode != http.StatusOK {
		t.Fatalf("run: status %d, body %s", resp.StatusCode, body)
	}
	first := scrape(t, ts.URL)
	for i := 0; i < 10; i++ {
		if again := scrape(t, ts.URL); again != first {
			t.Fatalf("scrape %d differs from first:\n--- first\n%s\n--- again\n%s", i, first, again)
		}
	}
}

// TestSessionResponseCarriesSpans: GET /v1/sessions/{id} on a finished
// parallelMap session reports the session span and the worker-job span it
// launched, correlated by the session ID.
func TestSessionResponseCarriesSpans(t *testing.T) {
	enableObs(t)
	ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/run", RunRequest{Project: parallelSrc})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: status %d, body %s", resp.StatusCode, body)
	}
	var rr RunResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}

	resp, body = getJSON(t, ts.URL+"/v1/sessions/"+rr.ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("session: status %d, body %s", resp.StatusCode, body)
	}
	var sr SessionResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	kinds := map[string]bool{}
	for _, sp := range sr.Spans {
		kinds[sp.Kind] = true
		if sp.DurationMS < 0 {
			t.Errorf("span %s: negative duration %g", sp.Kind, sp.DurationMS)
		}
	}
	if !kinds["session"] || !kinds["parallel.map"] {
		t.Fatalf("session spans = %+v, want both a session and a parallel.map span", sr.Spans)
	}
}

// TestPprofGatedByConfig: the profiling endpoints exist exactly when the
// config asks for them.
func TestPprofGatedByConfig(t *testing.T) {
	off := newTestServer(t, Config{})
	if resp, _ := getJSON(t, off.URL+"/debug/pprof/cmdline"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof off: /debug/pprof/cmdline status %d, want 404", resp.StatusCode)
	}
	on := newTestServer(t, Config{EnablePprof: true})
	if resp, _ := getJSON(t, on.URL+"/debug/pprof/cmdline"); resp.StatusCode != http.StatusOK {
		t.Errorf("pprof on: /debug/pprof/cmdline status %d, want 200", resp.StatusCode)
	}
}
