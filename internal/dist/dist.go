// Package dist implements the last item on the paper's future-work list
// (§6.3): "we also wish to extend Snap! ... to support inter-node
// parallelism." It runs the MapReduce engine across a simulated cluster of
// share-nothing nodes connected by an in-memory message fabric:
//
//	partition → local parallel map → shuffle by key hash → local sort +
//	parallel reduce → gather
//
// Nodes are goroutines; every key/value pair crossing a node boundary is
// structured-cloned and counted, so the fabric reports the communication
// volume a real interconnect would carry — the quantity an inter-node
// Snap! deployment would be judged by.
package dist

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/mapreduce"
	"repro/internal/value"
)

// Config drives a distributed run.
type Config struct {
	// Nodes is the simulated node count (default 4).
	Nodes int
	// WorkersPerNode is each node's local (intra-node) parallelism —
	// its Web-Worker pool (default 2).
	WorkersPerNode int
	// FailMapOn injects a one-shot fault: the listed node IDs crash on
	// their first map attempt. The coordinator reassigns each failed
	// partition to the next live node and re-executes — MapReduce's
	// standard speculative re-execution, exercised without real machine
	// failures.
	FailMapOn []int
}

func (c *Config) fill() {
	if c.Nodes <= 0 {
		c.Nodes = 4
	}
	if c.WorkersPerNode <= 0 {
		c.WorkersPerNode = 2
	}
}

// Stats reports what crossed the simulated interconnect.
type Stats struct {
	// ShuffleMessages is the number of point-to-point sends in the
	// shuffle (pairs that changed nodes; node-local pairs are free).
	ShuffleMessages int64
	// ShuffleBytes approximates the shuffle volume (key bytes + an
	// 8-byte value slot per pair).
	ShuffleBytes int64
	// GatherMessages counts result pairs sent to the coordinator.
	GatherMessages int64
	// Reexecutions counts map partitions re-run on a different node
	// after an injected crash.
	Reexecutions int64
	// PairsPerNode records each node's post-shuffle pair count — the
	// reduce-side balance.
	PairsPerNode []int64
}

// Imbalance reports max/mean of the post-shuffle distribution (1.0 =
// perfectly balanced reduce side).
func (s Stats) Imbalance() float64 {
	if len(s.PairsPerNode) == 0 {
		return 1
	}
	var total, max int64
	for _, n := range s.PairsPerNode {
		total += n
		if n > max {
			max = n
		}
	}
	if total == 0 {
		return 1
	}
	mean := float64(total) / float64(len(s.PairsPerNode))
	return float64(max) / mean
}

// owner maps a key to its reducing node.
func owner(key string, nodes int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(nodes))
}

// MapReduce runs the full distributed pipeline and returns the merged,
// key-sorted result plus the interconnect statistics. The result is
// identical to single-node mapreduce.Run for the same mapper and reducer.
func MapReduce(input *value.List, m mapreduce.Mapper, r mapreduce.Reducer, cfg Config) (mapreduce.Result, Stats, error) {
	cfg.fill()
	n := input.Len()
	nodes := cfg.Nodes
	if nodes > n && n > 0 {
		nodes = n
	}
	if n == 0 {
		return nil, Stats{PairsPerNode: make([]int64, nodes)}, nil
	}

	// Partition the input in contiguous blocks (the data starts
	// sharded, as it would on a real cluster's filesystem).
	parts := make([]*value.List, nodes)
	chunk := (n + nodes - 1) / nodes
	items := input.Items()
	for k := 0; k < nodes; k++ {
		lo, hi := k*chunk, (k+1)*chunk
		if lo > n {
			lo = n
		}
		if hi > n {
			hi = n
		}
		part := value.NewListCap(hi - lo)
		for i := lo; i < hi; i++ {
			part.Add(value.CloneValue(items[i])) // shipping input to the node
		}
		parts[k] = part
	}

	stats := Stats{PairsPerNode: make([]int64, nodes)}
	// inboxes[k] collects the pairs shuffled to node k.
	inboxes := make([][]mapreduce.KVP, nodes)
	var inboxMu sync.Mutex
	var shuffleMsgs, shuffleBytes atomic.Int64
	errs := make([]error, nodes)
	crashed := map[int]bool{}
	for _, id := range cfg.FailMapOn {
		if id >= 0 && id < nodes {
			crashed[id] = true
		}
	}

	// mapPartition runs one partition's map phase on behalf of `node`
	// and shuffles the intermediate pairs.
	mapPartition := func(node int, part *value.List) error {
		mid, err := mapreduce.MapOnly(part, m, cfg.WorkersPerNode)
		if err != nil {
			return fmt.Errorf("node %d map: %w", node, err)
		}
		// Bucket locally, then send each bucket.
		buckets := make([][]mapreduce.KVP, nodes)
		for _, kv := range mid {
			dst := owner(kv.Key, nodes)
			if dst != node {
				shuffleMsgs.Add(1)
				shuffleBytes.Add(int64(len(kv.Key)) + 8)
				// Structured clone across the node boundary.
				kv.Val = value.CloneValue(kv.Val)
			}
			buckets[dst] = append(buckets[dst], kv)
		}
		inboxMu.Lock()
		for dst, b := range buckets {
			inboxes[dst] = append(inboxes[dst], b...)
		}
		inboxMu.Unlock()
		return nil
	}

	// Phase 1+2: local map, then shuffle. Injected crashes lose the
	// partition's work entirely (nothing is shuffled from a crashed
	// attempt).
	var wg sync.WaitGroup
	failed := make([]bool, nodes)
	for k := 0; k < nodes; k++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			if crashed[node] {
				failed[node] = true
				return
			}
			if err := mapPartition(node, parts[node]); err != nil {
				errs[node] = err
			}
		}(k)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, stats, err
		}
	}

	// Recovery: reassign each crashed node's partition to the next live
	// node (round-robin) and re-execute — the pairs still shuffle to
	// their key owners, so the result is unchanged.
	for node := range failed {
		if !failed[node] {
			continue
		}
		replacement := -1
		for off := 1; off < nodes; off++ {
			cand := (node + off) % nodes
			if !crashed[cand] {
				replacement = cand
				break
			}
		}
		if replacement < 0 {
			return nil, stats, fmt.Errorf("all %d nodes crashed; nothing can re-execute", nodes)
		}
		stats.Reexecutions++
		if err := mapPartition(replacement, parts[node]); err != nil {
			return nil, stats, err
		}
	}
	stats.ShuffleMessages = shuffleMsgs.Load()
	stats.ShuffleBytes = shuffleBytes.Load()

	// Phase 3: local sort + reduce on each node.
	partials := make([]mapreduce.Result, nodes)
	for k := 0; k < nodes; k++ {
		stats.PairsPerNode[k] = int64(len(inboxes[k]))
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			res, err := mapreduce.ReduceSorted(inboxes[node], r, cfg.WorkersPerNode)
			if err != nil {
				errs[node] = fmt.Errorf("node %d reduce: %w", node, err)
				return
			}
			partials[node] = res
		}(k)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, stats, err
		}
	}

	// Phase 4: gather to the coordinator and merge by key. Each key
	// lives on exactly one node, so concatenation + sort merges cleanly.
	var out mapreduce.Result
	for k := 0; k < nodes; k++ {
		stats.GatherMessages += int64(len(partials[k]))
		out = append(out, partials[k]...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, stats, nil
}
