package dist

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/mapreduce"
	"repro/internal/value"
)

func words(s string) *value.List {
	return value.FromStrings(strings.Fields(s))
}

func TestDistributedEqualsSingleNode(t *testing.T) {
	in := words("b a c b a b d e a c b f")
	single, err := mapreduce.Run(in, mapreduce.WordCount, mapreduce.SumReduce,
		mapreduce.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, nodes := range []int{1, 2, 3, 4, 8} {
		distRes, _, err := MapReduce(in, mapreduce.WordCount, mapreduce.SumReduce,
			Config{Nodes: nodes, WorkersPerNode: 2})
		if err != nil {
			t.Fatalf("nodes=%d: %v", nodes, err)
		}
		if len(distRes) != len(single) {
			t.Fatalf("nodes=%d: %d keys, want %d", nodes, len(distRes), len(single))
		}
		for i := range single {
			if distRes[i].Key != single[i].Key || !value.Equal(distRes[i].Val, single[i].Val) {
				t.Errorf("nodes=%d key %q: %v vs %v",
					nodes, single[i].Key, distRes[i].Val, single[i].Val)
			}
		}
	}
}

func TestShuffleAccounting(t *testing.T) {
	in := words(strings.Repeat("alpha beta gamma delta ", 25)) // 100 words
	_, stats, err := MapReduce(in, mapreduce.WordCount, mapreduce.SumReduce,
		Config{Nodes: 4, WorkersPerNode: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.ShuffleMessages == 0 {
		t.Error("a 4-node word count must shuffle something")
	}
	if stats.ShuffleMessages > 100 {
		t.Errorf("shuffle sent %d messages for 100 pairs", stats.ShuffleMessages)
	}
	if stats.ShuffleBytes < stats.ShuffleMessages*8 {
		t.Error("bytes must count at least the value slot per message")
	}
	var total int64
	for _, n := range stats.PairsPerNode {
		total += n
	}
	if total != 100 {
		t.Errorf("post-shuffle pairs = %d, want 100", total)
	}
	if stats.GatherMessages != 4 {
		t.Errorf("gather = %d result pairs, want 4 distinct words", stats.GatherMessages)
	}
	if im := stats.Imbalance(); im < 1 {
		t.Errorf("imbalance %g < 1 is impossible", im)
	}
}

func TestSingleNodeShufflesNothing(t *testing.T) {
	in := words("x y z x")
	_, stats, err := MapReduce(in, mapreduce.WordCount, mapreduce.SumReduce,
		Config{Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.ShuffleMessages != 0 || stats.ShuffleBytes != 0 {
		t.Error("one node has nobody to talk to")
	}
}

func TestEmptyInput(t *testing.T) {
	res, stats, err := MapReduce(value.NewList(), mapreduce.WordCount,
		mapreduce.SumReduce, Config{Nodes: 3})
	if err != nil || len(res) != 0 {
		t.Errorf("empty: %v, %v", res, err)
	}
	if stats.Imbalance() != 1 {
		t.Error("empty imbalance should be 1")
	}
}

func TestDefaultsAndClamping(t *testing.T) {
	in := words("a b")
	// More nodes than items: clamps; zero config: defaults.
	res, _, err := MapReduce(in, nil, nil, Config{Nodes: 100})
	if err != nil || len(res) != 2 {
		t.Errorf("clamped run: %v, %v", res, err)
	}
	res, _, err = MapReduce(in, nil, nil, Config{})
	if err != nil || len(res) != 2 {
		t.Errorf("default run: %v, %v", res, err)
	}
}

func TestErrorsPropagate(t *testing.T) {
	in := words("a b c d")
	badMap := func(value.Value) ([]mapreduce.KVP, error) {
		return nil, errors.New("map boom")
	}
	if _, _, err := MapReduce(in, badMap, mapreduce.SumReduce, Config{Nodes: 2}); err == nil {
		t.Error("map error should propagate")
	}
	badReduce := func(string, *value.List) (value.Value, error) {
		return nil, errors.New("reduce boom")
	}
	if _, _, err := MapReduce(in, mapreduce.WordCount, badReduce, Config{Nodes: 2}); err == nil {
		t.Error("reduce error should propagate")
	}
}

func TestInputNotMutated(t *testing.T) {
	in := value.NewList(value.NewList(value.Text("nested")))
	before := in.String()
	_, _, err := MapReduce(in, func(v value.Value) ([]mapreduce.KVP, error) {
		if l, ok := v.(*value.List); ok {
			l.Add(value.Text("mutant")) // node mutates ITS copy
		}
		return []mapreduce.KVP{{Key: "k", Val: value.Number(1)}}, nil
	}, mapreduce.SumReduce, Config{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if in.String() != before {
		t.Error("node mutated the coordinator's input: missing clone at partition")
	}
}

// Property: distributed result equals single-node for any word multiset,
// node count, and per-node worker count.
func TestPropertyDistEqualsSingle(t *testing.T) {
	vocab := []string{"red", "green", "blue", "cyan", "plum"}
	f := func(picks []uint8, nodesRaw, wRaw uint8) bool {
		nodes := int(nodesRaw)%6 + 1
		w := int(wRaw)%3 + 1
		in := value.NewListCap(len(picks))
		for _, p := range picks {
			in.Add(value.Text(vocab[int(p)%len(vocab)]))
		}
		single, err := mapreduce.Run(in, mapreduce.WordCount, mapreduce.SumReduce,
			mapreduce.Config{Workers: 1})
		if err != nil {
			return false
		}
		distRes, _, err := MapReduce(in, mapreduce.WordCount, mapreduce.SumReduce,
			Config{Nodes: nodes, WorkersPerNode: w})
		if err != nil || len(distRes) != len(single) {
			return false
		}
		for i := range single {
			if distRes[i].Key != single[i].Key || !value.Equal(distRes[i].Val, single[i].Val) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestNodeFailureRecovery(t *testing.T) {
	in := words("a b c d e f a b c d e f")
	clean, _, err := MapReduce(in, mapreduce.WordCount, mapreduce.SumReduce,
		Config{Nodes: 4, WorkersPerNode: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Crash one node: its partition re-executes elsewhere; the result
	// must be identical.
	res, stats, err := MapReduce(in, mapreduce.WordCount, mapreduce.SumReduce,
		Config{Nodes: 4, WorkersPerNode: 1, FailMapOn: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Reexecutions != 1 {
		t.Errorf("re-executions = %d, want 1", stats.Reexecutions)
	}
	if len(res) != len(clean) {
		t.Fatalf("result shape changed: %v vs %v", res, clean)
	}
	for i := range res {
		if res[i].Key != clean[i].Key || !value.Equal(res[i].Val, clean[i].Val) {
			t.Errorf("key %q: %v vs %v", clean[i].Key, res[i].Val, clean[i].Val)
		}
	}
	// Multiple crashes still recover.
	res2, stats2, err := MapReduce(in, mapreduce.WordCount, mapreduce.SumReduce,
		Config{Nodes: 4, WorkersPerNode: 1, FailMapOn: []int{0, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Reexecutions != 3 {
		t.Errorf("re-executions = %d, want 3", stats2.Reexecutions)
	}
	if len(res2) != len(clean) {
		t.Errorf("multi-crash result shape changed")
	}
	// Every node crashing is unrecoverable.
	if _, _, err := MapReduce(in, mapreduce.WordCount, mapreduce.SumReduce,
		Config{Nodes: 2, WorkersPerNode: 1, FailMapOn: []int{0, 1}}); err == nil {
		t.Error("total failure should error")
	}
	// Out-of-range crash IDs are ignored.
	if _, stats3, err := MapReduce(in, mapreduce.WordCount, mapreduce.SumReduce,
		Config{Nodes: 2, WorkersPerNode: 1, FailMapOn: []int{99}}); err != nil || stats3.Reexecutions != 0 {
		t.Errorf("bogus crash id: %v, %d", err, stats3.Reexecutions)
	}
}
