package vclock

import (
	"testing"
	"testing/quick"
)

func TestPlainClock(t *testing.T) {
	c := New()
	if c.Now() != 0 {
		t.Fatal("clock should start at 0")
	}
	for i := 1; i <= 9; i++ {
		if got := c.Tick(); got != int64(i) {
			t.Fatalf("tick %d -> %d", i, got)
		}
	}
	if c.Stalls() != 0 {
		t.Error("plain clock must not stall")
	}
	if c.Busy() != 9 {
		t.Errorf("busy = %d, want 9", c.Busy())
	}
}

func TestInterferenceReproducesFootnote5(t *testing.T) {
	// Sequential concession stand: 9 busy timesteps of pouring read 12
	// on the timer (Figure 10c).
	c := NewPaperInterference()
	for i := 0; i < 9; i++ {
		c.Tick()
	}
	if c.Now() != 12 {
		t.Errorf("sequential run = %d timesteps, paper reports 12", c.Now())
	}
	if c.Stalls() != 3 {
		t.Errorf("stalls = %d, want 3", c.Stalls())
	}

	// Parallel concession stand: 3 busy timesteps read exactly 3
	// (Figure 9c) — the grace period means short runs see no
	// interference, the paper's "the effect is more noticeable for
	// [the sequential case] than for the parallel case".
	c2 := NewPaperInterference()
	c2.Tick()
	c2.Tick()
	if got := c2.Tick(); got != 3 {
		t.Errorf("parallel run = %d timesteps, paper reports 3", got)
	}
	if c2.Stalls() != 0 {
		t.Error("parallel run should see no interference")
	}
}

func TestTickIdleDrawsNoInterference(t *testing.T) {
	c := NewWithInterference(0, 1, 5)
	c.TickIdle()
	c.TickIdle()
	c.TickIdle()
	if c.Now() != 3 || c.Stalls() != 0 {
		t.Errorf("idle ticks: now=%d stalls=%d", c.Now(), c.Stalls())
	}
}

func TestReset(t *testing.T) {
	c := NewWithInterference(0, 2, 1)
	c.Tick()
	c.Tick()
	c.Reset()
	if c.Now() != 0 || c.Stalls() != 0 || c.Busy() != 0 {
		t.Error("reset should zero the clock")
	}
}

func TestTimer(t *testing.T) {
	c := New()
	c.Tick()
	tm := NewTimer(c)
	c.Tick()
	c.Tick()
	if tm.Elapsed() != 2 {
		t.Errorf("elapsed = %d, want 2", tm.Elapsed())
	}
	tm.Reset()
	if tm.Elapsed() != 0 {
		t.Error("reset timer should read 0")
	}
}

// Property: with interference (g, p, s), n busy ticks cost
// n + floor(max(0, n-g)/p)*s total timesteps.
func TestPropertyInterferenceArithmetic(t *testing.T) {
	f := func(n, g, p, s uint8) bool {
		grace := int(g % 10)
		period := int(p%7) + 1
		stall := int(s % 4)
		ticks := int(n % 100)
		c := NewWithInterference(grace, period, stall)
		for i := 0; i < ticks; i++ {
			c.Tick()
		}
		extra := 0
		if ticks > grace {
			extra = (ticks - grace) / period * stall
		}
		return c.Now() == int64(ticks+extra) && c.Busy() == int64(ticks)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the clock is monotonic under any interleaving of Tick/TickIdle.
func TestPropertyMonotonic(t *testing.T) {
	f := func(ops []bool) bool {
		c := NewWithInterference(1, 3, 2)
		prev := c.Now()
		for _, busy := range ops {
			var now int64
			if busy {
				now = c.Tick()
			} else {
				now = c.TickIdle()
			}
			if now <= prev {
				return false
			}
			prev = now
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
