// Package vclock provides the discrete virtual clock that stands in for the
// browser's wall clock. Snap!'s concession-stand demo (Figures 7–10 of the
// paper) measures elapsed time in "timestep units": one timestep is one
// round of the thread manager in which at least one process did work.
//
// Footnote 5 of the paper observes that the sequential concession stand
// took 12 timesteps instead of the expected 9 because "other tasks that
// also execute in the browser or on the computer" interfere, and that the
// effect grows with run length ("as the sequential case takes longer to
// execute, the effect is more noticeable for it than for the parallel
// case"). Interference is modeled deterministically with a grace period:
// the first Grace busy timesteps run clean (short runs — like the 3-step
// parallel pour — see no interference at all), after which the clock
// inserts Stall extra timesteps every Period busy timesteps. With the
// paper-calibrated parameters Grace=3, Period=2, Stall=1 the sequential
// pour costs 9 work + 3 interference = 12 timesteps and the parallel pour
// costs exactly 3 — reproducing Figures 9c and 10c.
package vclock

// Clock is a discrete virtual clock.
type Clock struct {
	now  int64
	busy int64 // total busy timesteps so far

	// interference model; zero period disables it
	grace  int64
	period int64
	stall  int64

	stalls int64 // total interference timesteps inserted
}

// New returns a clock at timestep 0 with no interference.
func New() *Clock { return &Clock{} }

// NewWithInterference returns a clock whose first grace busy timesteps run
// clean, after which stall extra timesteps are inserted every period busy
// timesteps, per footnote 5 of the paper.
func NewWithInterference(grace, period, stall int) *Clock {
	return &Clock{grace: int64(grace), period: int64(period), stall: int64(stall)}
}

// NewPaperInterference returns the clock calibrated to the paper's
// concession-stand run: grace 3, period 2, stall 1.
func NewPaperInterference() *Clock { return NewWithInterference(3, 2, 1) }

// Now reports the current timestep.
func (c *Clock) Now() int64 { return c.now }

// Busy reports the total busy timesteps ticked so far.
func (c *Clock) Busy() int64 { return c.busy }

// Stalls reports the total interference timesteps inserted so far.
func (c *Clock) Stalls() int64 { return c.stalls }

// Tick advances the clock by one busy timestep and then applies the
// interference model. It returns the new time.
func (c *Clock) Tick() int64 {
	c.now++
	c.busy++
	if c.period > 0 && c.busy > c.grace && (c.busy-c.grace)%c.period == 0 {
		c.now += c.stall
		c.stalls += c.stall
	}
	return c.now
}

// TickIdle advances the clock by one timestep without counting it as busy
// work (no process ran); idle time draws no interference.
func (c *Clock) TickIdle() int64 {
	c.now++
	return c.now
}

// Reset returns the clock to timestep 0 and clears interference state.
func (c *Clock) Reset() {
	c.now, c.busy, c.stalls = 0, 0, 0
}

// Timer is a resettable stopwatch over a Clock — the stage timer shown in
// the upper-left corner of Figure 7.
type Timer struct {
	clock *Clock
	start int64
}

// NewTimer returns a timer over c, started now.
func NewTimer(c *Clock) *Timer { return &Timer{clock: c, start: c.Now()} }

// Reset restarts the timer at the clock's current timestep.
func (t *Timer) Reset() { t.start = t.clock.Now() }

// Elapsed reports timesteps since the last Reset.
func (t *Timer) Elapsed() int64 { return t.clock.Now() - t.start }
