package interp_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/blocks"
	"repro/internal/interp"
	"repro/internal/parse"
)

func foreverProject(t *testing.T) *blocks.Project {
	t.Helper()
	p, err := parse.Project(`
		(project "forever"
		  (sprite "S"
		    (local x 0)
		    (when green-flag (do
		      (forever (do (change x 1)))))))`)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunContextDeadlineKillsForever(t *testing.T) {
	m := interp.NewMachine(foreverProject(t), nil)
	m.GreenFlag()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := m.RunContext(ctx, interp.RunLimits{})
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want deadline error, got %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("deadline kill took %v", d)
	}
	if len(m.Processes()) != 0 {
		t.Fatalf("killed machine still has %d live processes", len(m.Processes()))
	}
}

func TestRunContextStepBudget(t *testing.T) {
	m := interp.NewMachine(foreverProject(t), nil)
	m.GreenFlag()
	err := m.RunContext(context.Background(), interp.RunLimits{MaxSteps: 5000})
	if !errors.Is(err, interp.ErrStepLimit) {
		t.Fatalf("want ErrStepLimit, got %v", err)
	}
	// The budget is enforced between rounds with a clamped slice, so the
	// overshoot is at most one live process's slice.
	if got := m.Steps(); got > 5000+int64(m.SliceOps) {
		t.Fatalf("steps = %d, want <= budget + one slice", got)
	}
	if len(m.Processes()) != 0 {
		t.Fatal("step-limited machine still has live processes")
	}
}

func TestRunDelegatesUnchanged(t *testing.T) {
	m := interp.NewMachine(foreverProject(t), nil)
	m.GreenFlag()
	err := m.Run(10)
	if !errors.Is(err, interp.ErrRoundLimit) {
		t.Fatalf("want ErrRoundLimit, got %v", err)
	}
	if !strings.Contains(err.Error(), "after 10 rounds") {
		t.Fatalf("round-limit error lost its detail: %v", err)
	}
}

func TestKillFiresOnDoneHooks(t *testing.T) {
	m := interp.NewMachine(foreverProject(t), nil)
	procs := m.GreenFlag()
	if len(procs) != 1 {
		t.Fatalf("started %d processes, want 1", len(procs))
	}
	fired := false
	procs[0].OnDone = func(*interp.Process) { fired = true }
	m.Run(5) // let it spin a little
	m.Kill()
	if !fired {
		t.Fatal("Kill did not fire the process OnDone hook")
	}
	if m.Step() {
		t.Fatal("killed machine claims live processes")
	}
}

func TestValueCapsListAndText(t *testing.T) {
	interp.SetValueCaps(100, 64)
	defer interp.SetValueCaps(0, 0)

	m := interp.NewMachine(blocks.NewProject("caps"), nil)
	script, err := parse.Script(`(report (numbers 1 1000))`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunScript(script); err == nil || !strings.Contains(err.Error(), "cap") {
		t.Fatalf("numbers over cap: want cap error, got %v", err)
	}

	m = interp.NewMachine(blocks.NewProject("caps"), nil)
	script, err = parse.Script(`
		(declare s)
		(set s "xxxxxxxxxxxxxxxx")
		(repeat 5 (do (set s (join $s $s))))
		(report $s)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunScript(script); err == nil || !strings.Contains(err.Error(), "cap") {
		t.Fatalf("doubling text over cap: want cap error, got %v", err)
	}

	// Under the caps everything still works.
	m = interp.NewMachine(blocks.NewProject("caps"), nil)
	script, err = parse.Script(`(report (length (numbers 1 50)))`)
	if err != nil {
		t.Fatal(err)
	}
	v, err := m.RunScript(script)
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "50" {
		t.Fatalf("numbers under cap = %s, want 50", v)
	}
}

func TestBoundedStageTrace(t *testing.T) {
	p, err := parse.Project(`
		(project "tracey"
		  (sprite "S"
		    (when green-flag (do
		      (repeat 20 (do (forward 1)))))))`)
	if err != nil {
		t.Fatal(err)
	}
	m := interp.NewMachine(p, nil)
	m.Stage.MaxTrace = 5
	m.GreenFlag()
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := len(m.Stage.TraceLines()); got != 5 {
		t.Fatalf("bounded trace kept %d lines, want 5", got)
	}
	if got := m.Stage.TraceDropped(); got != 15 {
		t.Fatalf("dropped = %d, want 15", got)
	}
}
