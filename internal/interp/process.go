package interp

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/blocks"
	"repro/internal/stage"
	"repro/internal/value"
)

// yieldMarker is the "doYield" pseudo-expression of Listing 2: evaluating
// it sets the process's readyToYield flag, handing the thread back to the
// scheduler. ("The pushContext('doYield') instructs the environment to
// allow something else to run.")
type yieldMarker struct{}

// Context is one stack frame of the interpreter: the expression being
// evaluated, the inputs evaluated so far, and the lexical frame. Primitives
// that need to survive across yields stash scratch values in Inputs beyond
// their declared arity, exactly as Listing 2 stores the Parallel job in
// this.context.inputs[3].
type Context struct {
	Parent *Context
	// Expr is the expression under evaluation: *blocks.Block,
	// *blocks.Script, a slot Node (Literal, VarGet, EmptySlot, RingNode,
	// ScriptNode), or yieldMarker.
	Expr any
	// PC indexes the next block for *blocks.Script expressions.
	PC int
	// Inputs collects evaluated argument values, then primitive scratch.
	Inputs []value.Value
	// Frame is the lexical scope for this context.
	Frame *Frame
	// ProcBoundary marks contexts that doReport unwinds to: the calling
	// block of a custom block or command-ring invocation.
	ProcBoundary bool
}

// Control is a primitive's verdict about its context.
type Control int

// Primitive control outcomes.
const (
	// Done pops the context and returns the primitive's value to the
	// parent context.
	Done Control = iota
	// Again leaves the context in place (the primitive pushed children
	// and wants to be re-entered when they finish — the Listing 2 poll
	// pattern, and every loop).
	Again
	// Replaced means the primitive already restructured the stack
	// (popped itself, unwound, ...); the evaluator must not touch it.
	Replaced
)

// Primitive implements one opcode. It is called once all declared inputs
// are evaluated, and re-called each time control returns to its context
// while it keeps answering Again.
type Primitive func(p *Process, ctx *Context) (value.Value, Control, error)

var primitives = map[string]Primitive{}

// RegisterPrimitive installs the implementation of an opcode. Packages that
// extend the language (package core registers the paper's parallel blocks)
// call this from init.
func RegisterPrimitive(op string, fn Primitive) {
	if _, dup := primitives[op]; dup {
		panic("interp: duplicate primitive " + op)
	}
	primitives[op] = fn
}

// HasPrimitive reports whether an opcode is implemented.
func HasPrimitive(op string) bool {
	_, ok := primitives[op]
	return ok
}

// Process is one running script: Snap!'s unit of concurrency. The thread
// manager steps every live process each round; a process runs until it
// yields, finishes, errors, or exhausts its time slice.
type Process struct {
	// Machine is the owning scheduler; nil for detached pure evaluation
	// (a function shipped to a Web Worker has no machine, no stage, no
	// DOM — stage primitives error in that case, as in the browser).
	Machine *Machine
	// Sprite is the defining sprite (for custom-block lookup); may be nil.
	Sprite *blocks.Sprite
	// Actor is the stage actor this process animates; may be nil.
	Actor *stage.Actor

	context      *Context
	freeCtx      *Context // recycled contexts (single-threaded freelist)
	exec         Exec     // non-nil: a bytecode executor drives this process
	trace        func(*Process, *blocks.Block)
	rootFrame    *Frame
	result       value.Value
	err          error
	stopped      bool
	readyToYield bool
	warp         int
	consumedWait bool // set when a doWait tick was consumed this step

	// rng is the process-local random stream of a detached (worker)
	// process; see detachedRand. Machine-owned processes use the
	// machine's stream instead.
	rng *rand.Rand

	// OnDone, when set, runs as soon as the process completes or dies.
	OnDone func(*Process)

	// frameStore is the inline storage behind rootFrame for processes
	// built on the spawn fast path: one fewer allocation per spawn, and
	// anything that captured the root frame (a reified ring, a spliced
	// closure) keeps the whole Process alive with it, which it already
	// did via the frame's parent chain.
	frameStore Frame
}

// NewProcess builds a process that will run expr (a *blocks.Script or any
// slot Node) in a child of base frame.
func NewProcess(m *Machine, sprite *blocks.Sprite, actor *stage.Actor, expr any, base *Frame) *Process {
	f := NewFrame(base)
	p := &Process{Machine: m, Sprite: sprite, Actor: actor, rootFrame: f}
	p.context = &Context{Expr: expr, Frame: f}
	return p
}

// Done reports whether the process has finished (normally or not).
func (p *Process) Done() bool {
	if p.stopped || p.err != nil {
		return true
	}
	if p.exec != nil {
		return p.exec.Done()
	}
	return p.context == nil
}

// Err returns the error that killed the process, if any.
func (p *Process) Err() error { return p.err }

// Result returns the value the process's top-level expression reported.
func (p *Process) Result() value.Value {
	if p.result == nil {
		return value.Nothing{}
	}
	return p.result
}

// Stop halts the process at the next opportunity.
func (p *Process) Stop() { p.stopped = true }

// RootFrame exposes the process-local scope (script variables live here).
func (p *Process) RootFrame() *Frame { return p.rootFrame }

// fail kills the process with an error.
func (p *Process) fail(err error) {
	if p.err == nil {
		p.err = err
	}
	p.context = nil
}

// pushContext pushes a child context evaluating expr in frame f. Contexts
// are recycled through a per-process freelist: the interpreter allocates
// one context per block evaluation, so recycling removes the dominant
// allocation of the evaluator loop (measured 2.6× fewer allocations and
// ~40% less time on the counting-loop benchmark).
func (p *Process) pushContext(expr any, f *Frame) {
	ctx := p.freeCtx
	if ctx == nil {
		ctx = &Context{}
	} else {
		p.freeCtx = ctx.Parent
	}
	ctx.Parent = p.context
	ctx.Expr = expr
	ctx.PC = 0
	ctx.Inputs = ctx.Inputs[:0]
	ctx.Frame = f
	ctx.ProcBoundary = false
	p.context = ctx
}

// recycle returns a popped context to the freelist. Contexts skipped by a
// non-local unwind are simply left to the garbage collector.
func (p *Process) recycle(ctx *Context) {
	ctx.Expr = nil
	ctx.Frame = nil
	for i := range ctx.Inputs {
		ctx.Inputs[i] = nil
	}
	ctx.Inputs = ctx.Inputs[:0]
	ctx.Parent = p.freeCtx
	p.freeCtx = ctx
}

// PushYield pushes a doYield marker, Listing 2's
// this.pushContext('doYield').
func (p *Process) PushYield() { p.pushContext(yieldMarker{}, p.context.Frame) }

// PushBody pushes a command closure (script ring) for execution; used by
// control primitives for their C-slots.
func (p *Process) PushBody(body value.Value) error {
	return p.PushBodyInFrame(body, nil)
}

// PushBodyInFrame pushes a command closure using override as the lexical
// parent instead of the closure's captured environment (loop upvars).
func (p *Process) PushBodyInFrame(body value.Value, override *Frame) error {
	if value.IsNothing(body) {
		return nil // an empty C-slot is a no-op
	}
	ring, ok := body.(*blocks.Ring)
	if !ok {
		return fmt.Errorf("expecting a script but getting a %s", body.Kind())
	}
	f := override
	if f == nil {
		if env, ok := ring.Env.(*Frame); ok {
			f = env
		} else {
			f = p.rootFrame
		}
	}
	switch b := ring.Body.(type) {
	case *blocks.Script:
		p.pushContext(b, NewFrame(f))
	case blocks.Node:
		p.pushContext(b, NewFrame(f))
	default:
		return errors.New("empty ring")
	}
	return nil
}

// popContext pops the top context without producing a value.
func (p *Process) popContext() {
	if p.context != nil {
		ctx := p.context
		p.context = ctx.Parent
		p.recycle(ctx)
	}
}

// returnValue pops the top context and delivers v to its parent — Snap!'s
// returnValueToParentContext. Script contexts discard command results; the
// process root stores the value as the process result.
func (p *Process) returnValue(v value.Value) {
	ctx := p.context
	p.context = ctx.Parent
	p.recycle(ctx)
	if p.context == nil {
		p.result = v
		return
	}
	if _, isScript := p.context.Expr.(*blocks.Script); isScript {
		return // commands in a script report nothing upward
	}
	p.context.Inputs = append(p.context.Inputs, v)
}

// UnwindToProcBoundary implements doReport: pop contexts until the nearest
// procedure-call boundary, deliver v there, and pop it too. Reports true
// when a boundary was found; false means the report escaped to the top (the
// whole process reports v and ends).
func (p *Process) UnwindToProcBoundary(v value.Value) bool {
	for c := p.context; c != nil; c = c.Parent {
		if c.ProcBoundary {
			p.context = c
			p.returnValue(v)
			return true
		}
	}
	p.result = v
	p.context = nil
	return false
}

// Warped reports whether the process is inside a warp block (no implicit
// yields).
func (p *Process) Warped() bool { return p.warp > 0 }

// EnterWarp and ExitWarp bracket warped execution.
func (p *Process) EnterWarp() { p.warp++ }

// ExitWarp leaves one level of warp.
func (p *Process) ExitWarp() {
	if p.warp > 0 {
		p.warp--
	}
}

// MarkWaitConsumed records that the process spent a virtual timestep this
// round (a doWait tick); the machine advances the stage clock once per
// round in which any process did so.
func (p *Process) MarkWaitConsumed() { p.consumedWait = true }

// RunStep runs the process until it yields, finishes, or has evaluated
// maxOps contexts (the time slice of §2: "each process executes for a
// short amount of time called a time slice before yielding to the next
// process"). Warped processes ignore yields but still honor the op budget
// as a runaway guard. It returns the number of evaluator ops consumed, the
// accounting unit behind machine-level step budgets.
func (p *Process) RunStep(maxOps int) int {
	p.readyToYield = false
	// Resolve the trace hook once per slice: the evaluator loop then pays
	// a single nil check per block instead of chasing Machine.TraceBlock
	// through two pointers on every application.
	p.trace = nil
	if p.Machine != nil {
		p.trace = p.Machine.TraceBlock
	}
	if p.exec != nil {
		return p.exec.Step(p, maxOps)
	}
	ops := 0
	for p.context != nil && !p.stopped {
		if p.readyToYield && p.warp == 0 {
			return ops
		}
		p.readyToYield = false
		if err := p.evaluateContext(); err != nil {
			p.fail(err)
			return ops
		}
		ops++
		if maxOps > 0 && ops >= maxOps {
			return ops
		}
	}
	return ops
}

// evaluateContext performs one evaluation step on the top context.
func (p *Process) evaluateContext() error {
	ctx := p.context
	switch expr := ctx.Expr.(type) {
	case yieldMarker:
		p.readyToYield = true
		p.popContext()
		return nil

	case collector:
		if len(ctx.Inputs) > 0 {
			p.result = ctx.Inputs[0]
		}
		p.popContext()
		return nil

	case *blocks.Script:
		if expr == nil || ctx.PC >= len(expr.Blocks) {
			p.returnValue(value.Nothing{})
			return nil
		}
		next := expr.Blocks[ctx.PC]
		ctx.PC++
		p.pushContext(next, ctx.Frame)
		return nil

	case blocks.Literal:
		v := expr.Val
		if v == nil {
			v = value.Nothing{}
		} else if l, isList := v.(*value.List); isList {
			// Container literals (XML projects can embed <list> values
			// in slots) evaluate to a fresh copy: the AST may be shared
			// across machines by the program cache, and even within one
			// machine a script mutating its own literal must not see the
			// mutation on re-entry. Scalar literals — the common case —
			// stay on the no-alloc path above.
			v = l.Clone()
		}
		p.returnValue(v)
		return nil

	case blocks.EmptySlot:
		p.returnValue(ctx.Frame.TakeImplicit())
		return nil

	case blocks.VarGet:
		v, err := ctx.Frame.Get(expr.Name)
		if err != nil {
			return err
		}
		p.returnValue(v)
		return nil

	case blocks.RingNode:
		p.returnValue(p.reify(expr, ctx.Frame))
		return nil

	case blocks.ScriptNode:
		p.returnValue(&blocks.Ring{Body: expr.Script, Env: ctx.Frame})
		return nil

	case *blocks.Block:
		return p.evaluateBlock(ctx, expr)

	default:
		return fmt.Errorf("cannot evaluate %T", ctx.Expr)
	}
}

// reify turns a ring node into a closure value capturing the frame.
func (p *Process) reify(r blocks.RingNode, f *Frame) *blocks.Ring {
	recv := ""
	if p.Actor != nil {
		recv = p.Actor.Name
	}
	return &blocks.Ring{Body: r.Body, Params: r.Params, Env: f, Receiver: recv}
}

// evaluateBlock evaluates the next unevaluated input of a block, or applies
// its primitive once all declared inputs are present.
func (p *Process) evaluateBlock(ctx *Context, b *blocks.Block) error {
	if len(ctx.Inputs) < len(b.Inputs) {
		in := b.Input(len(ctx.Inputs))
		switch n := in.(type) {
		case *blocks.Block:
			p.pushContext(n, ctx.Frame)
		default:
			p.pushContext(n, ctx.Frame)
		}
		return nil
	}
	prim, ok := primitives[b.Op]
	if !ok {
		return fmt.Errorf("missing implementation for block %q", b.Op)
	}
	if p.trace != nil {
		p.trace(p, b)
	}
	v, control, err := prim(p, ctx)
	if err != nil {
		return fmt.Errorf("%s: %w", b.Op, err)
	}
	switch control {
	case Done:
		if v == nil {
			v = value.Nothing{}
		}
		p.returnValue(v)
	case Again, Replaced:
		// the primitive manages its own stack
	}
	return nil
}

// CallRing invokes a reporter or command ring with arguments by pushing the
// appropriate contexts onto this process; the result is delivered to the
// current top context's Inputs (the caller, a primitive, re-reads it as
// scratch). Used by evaluate/doRun and the higher-order list blocks.
func (p *Process) CallRing(ring *blocks.Ring, args []value.Value) error {
	callFrame := NewFrame(ringEnv(ring, p))
	if len(ring.Params) > 0 {
		for i, name := range ring.Params {
			if i < len(args) {
				callFrame.Declare(name, args[i])
			} else {
				callFrame.Declare(name, value.Nothing{})
			}
		}
	} else {
		callFrame.BindImplicits(args)
	}
	switch body := ring.Body.(type) {
	case *blocks.Script:
		p.context.ProcBoundary = true
		p.pushContext(body, callFrame)
	case blocks.Node:
		p.pushContext(body, callFrame)
	default:
		return errors.New("cannot call an empty ring")
	}
	return nil
}

func ringEnv(ring *blocks.Ring, p *Process) *Frame {
	if env, ok := ring.Env.(*Frame); ok {
		return env
	}
	return p.rootFrame
}

// collector is the root pseudo-expression of a detached evaluation: it
// receives the called ring's value and stores it as the process result.
type collector struct{}

// StepBudget is the default op budget handed to detached evaluation.
const StepBudget = 10000

// ErrEvalBudget reports a runaway detached evaluation.
var ErrEvalBudget = errors.New("function evaluation exceeded its budget (infinite loop?)")

// Caller is a reusable detached evaluator: one Web-Worker-engine stand-in
// that can run many ring calls back to back on the same Process, keeping
// the context freelist, the root frame, and the argument buffer warm
// between calls. A fresh Process per element was the dominant cost of the
// interpreter tier at the worker boundary; a chunk of elements now shares
// one Caller.
//
// A Caller is not safe for concurrent use; each worker goroutine takes its
// own (GetCaller/Release).
type Caller struct {
	p      *Process
	argbuf []value.Value
}

// NewCaller builds a detached evaluator (no machine, no sprite, no stage —
// the execution context a function shipped to a Web Worker sees).
func NewCaller() *Caller {
	return &Caller{p: &Process{rootFrame: NewFrame(nil)}}
}

// Call evaluates ring(args) to completion, like CallFunction, but reusing
// this Caller's Process. Unlike CallFunction it does NOT clone args: the
// caller is expected to pass values that are already isolated from any
// running machine (e.g. boundary-cloned by the worker pool). maxSteps <= 0
// means StepBudget.
func (c *Caller) Call(ring *blocks.Ring, args []value.Value, maxSteps int) (value.Value, error) {
	if maxSteps <= 0 {
		maxSteps = StepBudget
	}
	p := c.p
	p.result = nil
	p.err = nil
	p.stopped = false
	p.readyToYield = false
	p.warp = 0
	p.consumedWait = false
	p.context = nil
	p.pushContext(collector{}, p.rootFrame)
	if err := p.CallRing(ring, args); err != nil {
		p.context = nil
		return nil, err
	}
	for steps := 0; p.context != nil; {
		steps += p.RunStep(256)
		if p.err != nil {
			return nil, p.err
		}
		if steps > maxSteps && p.context != nil {
			// Abandon the stack; the contexts above the freelist are
			// left to the garbage collector.
			p.context = nil
			return nil, ErrEvalBudget
		}
	}
	return p.Result(), nil
}

// callerPool recycles Callers across detached evaluations so a steady
// stream of worker calls reuses warmed Processes instead of allocating
// fresh ones.
var callerPool = sync.Pool{New: func() any { return NewCaller() }}

// GetCaller takes a pooled Caller; return it with Release when done.
func GetCaller() *Caller { return callerPool.Get().(*Caller) }

// Release returns the Caller to the pool.
func (c *Caller) Release() { callerPool.Put(c) }

// CallFunction evaluates a ring with arguments to completion in a detached
// process with no machine, no sprite, and no stage: the execution context a
// function shipped to a Web Worker sees. Stage- or scheduler-dependent
// primitives fail in this context, exactly as DOM access fails inside a
// real Web Worker. The maxSteps budget guards against non-terminating
// functions; pass 0 for StepBudget.
func CallFunction(ring *blocks.Ring, args []value.Value, maxSteps int) (value.Value, error) {
	c := GetCaller()
	defer c.Release()
	// A detached call must not share the ring's captured frames with a
	// concurrently running machine; workers are share-nothing. Cloning
	// the arguments is the postMessage discipline; the captured
	// environment is reached read-only via the frame chain.
	callArgs := c.argbuf[:0]
	for _, a := range args {
		callArgs = append(callArgs, value.CloneValue(a))
	}
	c.argbuf = callArgs
	return c.Call(ring, callArgs, maxSteps)
}
