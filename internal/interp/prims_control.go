package interp

import (
	"errors"
	"fmt"

	"repro/internal/blocks"
	"repro/internal/value"
)

// This file implements the control, variable, and procedure-call opcodes.
// Every primitive follows the Snap! re-entry protocol described in §4: a
// primitive whose context stays on the stack (Control = Again) is re-called
// when its children pop, and keeps private state in its context's Inputs
// beyond the declared arity — Listing 2's this.context.inputs[3].

func init() {
	RegisterPrimitive("doDeclareVariables", primDeclareVariables)
	RegisterPrimitive("doSetVar", primSetVar)
	RegisterPrimitive("doChangeVar", primChangeVar)
	RegisterPrimitive("doIf", primIf)
	RegisterPrimitive("doIfElse", primIfElse)
	RegisterPrimitive("doRepeat", primRepeat)
	RegisterPrimitive("doForever", primForever)
	RegisterPrimitive("doUntil", primUntil)
	RegisterPrimitive("doFor", primFor)
	RegisterPrimitive("doWait", primWait)
	RegisterPrimitive("doWarp", primWarp)
	RegisterPrimitive("doReport", primReport)
	RegisterPrimitive("doStopThis", primStopThis)
	RegisterPrimitive("evaluate", primEvaluate)
	RegisterPrimitive("doRun", primRun)
	RegisterPrimitive("evaluateCustomBlock", primEvaluateCustom)
}

// scratchState fetches the Opaque scratch stored at Inputs[argc], if any.
func scratchState(ctx *Context, argc int) (any, bool) {
	if len(ctx.Inputs) <= argc {
		return nil, false
	}
	o, ok := ctx.Inputs[argc].(*value.Opaque)
	if !ok {
		return nil, false
	}
	return o.Payload, true
}

func putScratch(ctx *Context, tag string, payload any) {
	ctx.Inputs = append(ctx.Inputs, &value.Opaque{Tag: tag, Payload: payload})
}

func primDeclareVariables(p *Process, ctx *Context) (value.Value, Control, error) {
	for _, v := range ctx.Inputs {
		ctx.Frame.Declare(v.String(), value.Nothing{})
	}
	return nil, Done, nil
}

func primSetVar(p *Process, ctx *Context) (value.Value, Control, error) {
	return nil, Done, ctx.Frame.Set(ctx.Inputs[0].String(), ctx.Inputs[1])
}

func primChangeVar(p *Process, ctx *Context) (value.Value, Control, error) {
	name := ctx.Inputs[0].String()
	cur, err := ctx.Frame.Get(name)
	if err != nil {
		return nil, Done, err
	}
	n, err := value.ToNumber(cur)
	if err != nil {
		return nil, Done, err
	}
	d, err := value.ToNumber(ctx.Inputs[1])
	if err != nil {
		return nil, Done, err
	}
	return nil, Done, ctx.Frame.Set(name, value.Num(float64(n+d)))
}

func primIf(p *Process, ctx *Context) (value.Value, Control, error) {
	cond, err := value.ToBool(ctx.Inputs[0])
	if err != nil {
		return nil, Done, err
	}
	if !cond {
		return nil, Done, nil
	}
	body := ctx.Inputs[1]
	p.popContext()
	if err := p.PushBody(body); err != nil {
		return nil, Done, err
	}
	return nil, Replaced, nil
}

func primIfElse(p *Process, ctx *Context) (value.Value, Control, error) {
	cond, err := value.ToBool(ctx.Inputs[0])
	if err != nil {
		return nil, Done, err
	}
	body := ctx.Inputs[2]
	if cond {
		body = ctx.Inputs[1]
	}
	p.popContext()
	if err := p.PushBody(body); err != nil {
		return nil, Done, err
	}
	return nil, Replaced, nil
}

func primRepeat(p *Process, ctx *Context) (value.Value, Control, error) {
	n, err := value.ToNumber(ctx.Inputs[0])
	if err != nil {
		return nil, Done, err
	}
	if n < 1 {
		return nil, Done, nil
	}
	ctx.Inputs[0] = value.Num(float64(n - 1)) // the mutated-counter trick Snap! itself uses
	// The yield marker is pushed even inside warp (where the scheduler
	// ignores it): it also swallows the body script's Nothing result,
	// which must not land in this context's own inputs. Snap! pushes
	// doYield unconditionally in its loop primitives for the same reason.
	p.PushYield()
	if err := p.PushBody(ctx.Inputs[1]); err != nil {
		return nil, Done, err
	}
	return nil, Again, nil
}

func primForever(p *Process, ctx *Context) (value.Value, Control, error) {
	p.PushYield() // unconditional: see primRepeat
	if err := p.PushBody(ctx.Inputs[0]); err != nil {
		return nil, Done, err
	}
	return nil, Again, nil
}

func primUntil(p *Process, ctx *Context) (value.Value, Control, error) {
	cond, err := value.ToBool(ctx.Inputs[0])
	if err != nil {
		return nil, Done, err
	}
	if cond {
		return nil, Done, nil
	}
	body := ctx.Inputs[1]
	// Clear the evaluated inputs so the condition is re-evaluated on
	// re-entry — Snap!'s `this.context.inputs = []` in doUntil. The
	// unconditional yield marker below (see primRepeat) is what keeps the
	// body's Nothing result from filling the freshly cleared slot: a
	// warped until would otherwise read the stale pseudo-condition
	// forever and never terminate.
	ctx.Inputs = ctx.Inputs[:0]
	p.PushYield()
	if err := p.PushBody(body); err != nil {
		return nil, Done, err
	}
	return nil, Again, nil
}

type forState struct {
	i, to, step float64
	frame       *Frame
	varName     string
}

func primFor(p *Process, ctx *Context) (value.Value, Control, error) {
	st, ok := scratchState(ctx, 4)
	if !ok {
		from, err := value.ToNumber(ctx.Inputs[1])
		if err != nil {
			return nil, Done, err
		}
		to, err := value.ToNumber(ctx.Inputs[2])
		if err != nil {
			return nil, Done, err
		}
		body, okRing := ctx.Inputs[3].(*blocks.Ring)
		if !okRing {
			return nil, Done, errors.New("for needs a script body")
		}
		step := 1.0
		if from > to {
			step = -1 // Snap! counts down when from > to
		}
		loop := NewFrame(ringEnv(body, p))
		s := &forState{i: float64(from), to: float64(to), step: step,
			frame: loop, varName: ctx.Inputs[0].String()}
		loop.Declare(s.varName, value.Num(float64(from)))
		putScratch(ctx, "forState", s)
		st = s
	}
	s := st.(*forState)
	if (s.step > 0 && s.i > s.to) || (s.step < 0 && s.i < s.to) {
		return nil, Done, nil
	}
	s.frame.Declare(s.varName, value.Num(s.i))
	s.i += s.step
	p.PushYield() // unconditional: see primRepeat
	if err := p.PushBodyInFrame(ctx.Inputs[3], s.frame); err != nil {
		return nil, Done, err
	}
	return nil, Again, nil
}

type waitState struct{ remaining int }

func primWait(p *Process, ctx *Context) (value.Value, Control, error) {
	st, ok := scratchState(ctx, 1)
	if !ok {
		n, err := value.ToNumber(ctx.Inputs[0])
		if err != nil {
			return nil, Done, err
		}
		if n <= 0 {
			return nil, Done, nil
		}
		s := &waitState{remaining: int(n)}
		putScratch(ctx, "waitState", s)
		st = s
	}
	s := st.(*waitState)
	if s.remaining <= 0 {
		return nil, Done, nil
	}
	s.remaining--
	p.MarkWaitConsumed()
	p.PushYield()
	return nil, Again, nil
}

func primWarp(p *Process, ctx *Context) (value.Value, Control, error) {
	if _, ran := scratchState(ctx, 1); ran {
		p.ExitWarp()
		return nil, Done, nil
	}
	putScratch(ctx, "warped", true)
	p.EnterWarp()
	if err := p.PushBody(ctx.Inputs[0]); err != nil {
		p.ExitWarp()
		return nil, Done, err
	}
	return nil, Again, nil
}

func primReport(p *Process, ctx *Context) (value.Value, Control, error) {
	v := ctx.Inputs[0]
	p.popContext() // remove the doReport block itself
	p.UnwindToProcBoundary(v)
	return nil, Replaced, nil
}

func primStopThis(p *Process, ctx *Context) (value.Value, Control, error) {
	p.Stop()
	return nil, Replaced, nil
}

// primEvaluate implements "call _ with inputs _ ..." — reporter rings.
// Calling a non-ring datum evaluates to itself, Snap!'s behavior when a
// plain value lands in the procedure slot.
func primEvaluate(p *Process, ctx *Context) (value.Value, Control, error) {
	argc := argcOf(ctx)
	if len(ctx.Inputs) > argc {
		return ctx.Inputs[argc], Done, nil
	}
	ring, ok := ctx.Inputs[0].(*blocks.Ring)
	if !ok {
		return ctx.Inputs[0], Done, nil
	}
	if err := p.CallRing(ring, ctx.Inputs[1:argc:argc]); err != nil {
		return nil, Done, err
	}
	return nil, Again, nil
}

// primRun implements "run _ with inputs _ ..." — command rings; no value.
func primRun(p *Process, ctx *Context) (value.Value, Control, error) {
	argc := argcOf(ctx)
	if len(ctx.Inputs) > argc {
		return nil, Done, nil
	}
	ring, ok := ctx.Inputs[0].(*blocks.Ring)
	if !ok {
		return nil, Done, fmt.Errorf("run needs a ring, got %s", ctx.Inputs[0].Kind())
	}
	if err := p.CallRing(ring, ctx.Inputs[1:argc:argc]); err != nil {
		return nil, Done, err
	}
	return nil, Again, nil
}

// primEvaluateCustom invokes a BYOB custom block by name.
func primEvaluateCustom(p *Process, ctx *Context) (value.Value, Control, error) {
	argc := argcOf(ctx)
	if len(ctx.Inputs) > argc {
		return ctx.Inputs[argc], Done, nil
	}
	if p.Machine == nil {
		return nil, Done, errors.New("custom blocks are not available inside a web worker")
	}
	name := ctx.Inputs[0].String()
	cb := p.Machine.Project.LookupCustom(p.Sprite, name)
	if cb == nil {
		return nil, Done, fmt.Errorf("undefined custom block %q", name)
	}
	env := p.Machine.SpriteFrame(p.Sprite)
	if env == nil {
		env = p.Machine.GlobalFrame()
	}
	ring := &blocks.Ring{Body: cb.Body, Params: cb.Params, Env: env}
	if err := p.CallRing(ring, ctx.Inputs[1:argc:argc]); err != nil {
		return nil, Done, err
	}
	return nil, Again, nil
}

// argcOf recovers the declared arity of the block under evaluation. For
// primitives that never append scratch before all inputs are evaluated this
// equals the block's input count.
func argcOf(ctx *Context) int {
	if b, ok := ctx.Expr.(*blocks.Block); ok {
		return len(b.Inputs)
	}
	return len(ctx.Inputs)
}
