package interp

import (
	"errors"
	"fmt"

	"repro/internal/blocks"
	"repro/internal/value"
)

// This file implements the list (red) opcodes and the stock sequential
// higher-order blocks — map, keep, combine, for-each — that §3.1 builds on
// before parallelizing them.

func init() {
	RegisterPrimitive("reportNewList", primNewList)
	RegisterPrimitive("reportNumbers", primNumbers)
	RegisterPrimitive("reportListItem", primListItem)
	RegisterPrimitive("reportListLength", primListLength)
	RegisterPrimitive("reportListContainsItem", primListContains)
	RegisterPrimitive("doAddToList", primAddToList)
	RegisterPrimitive("doDeleteFromList", primDeleteFromList)
	RegisterPrimitive("doInsertInList", primInsertInList)
	RegisterPrimitive("doReplaceInList", primReplaceInList)
	RegisterPrimitive("reportMap", primMap)
	RegisterPrimitive("reportKeep", primKeep)
	RegisterPrimitive("reportCombine", primCombine)
	RegisterPrimitive("doForEach", primForEach)
}

func primNewList(p *Process, ctx *Context) (value.Value, Control, error) {
	return value.NewList(ctx.Inputs...), Done, nil
}

func primNumbers(p *Process, ctx *Context) (value.Value, Control, error) {
	from, err := value.ToNumber(ctx.Inputs[0])
	if err != nil {
		return nil, Done, err
	}
	to, err := value.ToNumber(ctx.Inputs[1])
	if err != nil {
		return nil, Done, err
	}
	step := 1.0
	if from > to {
		step = -1
	}
	if err := CheckNumbersBounds(float64(from), float64(to)); err != nil {
		return nil, Done, err
	}
	return value.Range(float64(from), float64(to), step), Done, nil
}

func asList(v value.Value) (*value.List, error) {
	if l, ok := v.(*value.List); ok {
		return l, nil
	}
	return nil, fmt.Errorf("expecting a list but getting a %s", v.Kind())
}

func primListItem(p *Process, ctx *Context) (value.Value, Control, error) {
	i, err := value.ToInt(ctx.Inputs[0])
	if err != nil {
		return nil, Done, err
	}
	l, err := asList(ctx.Inputs[1])
	if err != nil {
		return nil, Done, err
	}
	v, err := l.Item(i)
	return v, Done, err
}

func primListLength(p *Process, ctx *Context) (value.Value, Control, error) {
	l, err := asList(ctx.Inputs[0])
	if err != nil {
		return nil, Done, err
	}
	return value.Number(float64(l.Len())), Done, nil
}

func primListContains(p *Process, ctx *Context) (value.Value, Control, error) {
	l, err := asList(ctx.Inputs[0])
	if err != nil {
		return nil, Done, err
	}
	return value.Bool(l.Contains(ctx.Inputs[1])), Done, nil
}

func primAddToList(p *Process, ctx *Context) (value.Value, Control, error) {
	l, err := asList(ctx.Inputs[1])
	if err != nil {
		return nil, Done, err
	}
	if err := checkListLen(l.Len() + 1); err != nil {
		return nil, Done, err
	}
	l.Add(ctx.Inputs[0])
	return nil, Done, nil
}

func primDeleteFromList(p *Process, ctx *Context) (value.Value, Control, error) {
	l, err := asList(ctx.Inputs[1])
	if err != nil {
		return nil, Done, err
	}
	i, err := value.ToInt(ctx.Inputs[0])
	if err != nil {
		return nil, Done, err
	}
	return nil, Done, l.DeleteAt(i)
}

func primInsertInList(p *Process, ctx *Context) (value.Value, Control, error) {
	l, err := asList(ctx.Inputs[2])
	if err != nil {
		return nil, Done, err
	}
	i, err := value.ToInt(ctx.Inputs[1])
	if err != nil {
		return nil, Done, err
	}
	if err := checkListLen(l.Len() + 1); err != nil {
		return nil, Done, err
	}
	return nil, Done, l.InsertAt(i, ctx.Inputs[0])
}

func primReplaceInList(p *Process, ctx *Context) (value.Value, Control, error) {
	l, err := asList(ctx.Inputs[1])
	if err != nil {
		return nil, Done, err
	}
	i, err := value.ToInt(ctx.Inputs[0])
	if err != nil {
		return nil, Done, err
	}
	return nil, Done, l.SetItem(i, ctx.Inputs[2])
}

// hofState drives the re-entrant sequential higher-order blocks: index of
// the next item and the accumulating output. The last delivered call result
// shows up at Inputs[argc+1] and is consumed on re-entry.
type hofState struct {
	i    int
	list *value.List
	out  *value.List
	acc  value.Value
}

// takeCallResult pops a ring-call result delivered beyond the scratch slot.
func takeCallResult(ctx *Context, argc int) (value.Value, bool) {
	if len(ctx.Inputs) > argc+1 {
		v := ctx.Inputs[argc+1]
		ctx.Inputs = ctx.Inputs[:argc+1]
		return v, true
	}
	return nil, false
}

func hofRing(v value.Value) (*blocks.Ring, error) {
	ring, ok := v.(*blocks.Ring)
	if !ok {
		return nil, fmt.Errorf("expecting a ring but getting a %s", v.Kind())
	}
	return ring, nil
}

// primMap is the stock sequential map of Figure 4: "executes sequentially
// by looping over a list, applying the user-supplied function to each list
// element, and ultimately returning a new list containing the results."
func primMap(p *Process, ctx *Context) (value.Value, Control, error) {
	const argc = 2
	st, ok := scratchState(ctx, argc)
	if !ok {
		l, err := asList(ctx.Inputs[1])
		if err != nil {
			return nil, Done, err
		}
		s := &hofState{list: l, out: value.NewListCap(l.Len())}
		putScratch(ctx, "mapState", s)
		st = s
	}
	s := st.(*hofState)
	if v, got := takeCallResult(ctx, argc); got {
		s.out.Add(v)
	}
	if s.i >= s.list.Len() {
		return s.out, Done, nil
	}
	ring, err := hofRing(ctx.Inputs[0])
	if err != nil {
		return nil, Done, err
	}
	item := s.list.MustItem(s.i + 1)
	s.i++
	if err := p.CallRing(ring, []value.Value{item}); err != nil {
		return nil, Done, err
	}
	return nil, Again, nil
}

// primKeep filters: keep items such that the predicate holds.
func primKeep(p *Process, ctx *Context) (value.Value, Control, error) {
	const argc = 2
	st, ok := scratchState(ctx, argc)
	if !ok {
		l, err := asList(ctx.Inputs[1])
		if err != nil {
			return nil, Done, err
		}
		s := &hofState{list: l, out: value.NewList()}
		putScratch(ctx, "keepState", s)
		st = s
	}
	s := st.(*hofState)
	if v, got := takeCallResult(ctx, argc); got {
		keep, err := value.ToBool(v)
		if err != nil {
			return nil, Done, err
		}
		if keep {
			s.out.Add(s.list.MustItem(s.i)) // s.i already advanced past it
		}
	}
	if s.i >= s.list.Len() {
		return s.out, Done, nil
	}
	ring, err := hofRing(ctx.Inputs[0])
	if err != nil {
		return nil, Done, err
	}
	item := s.list.MustItem(s.i + 1)
	s.i++
	if err := p.CallRing(ring, []value.Value{item}); err != nil {
		return nil, Done, err
	}
	return nil, Again, nil
}

// primCombine folds the list pairwise with a binary ring ("combine _
// using _") — the sequential ancestor of the parallel reduction.
func primCombine(p *Process, ctx *Context) (value.Value, Control, error) {
	const argc = 2
	st, ok := scratchState(ctx, argc)
	if !ok {
		l, err := asList(ctx.Inputs[0])
		if err != nil {
			return nil, Done, err
		}
		s := &hofState{list: l}
		if l.Len() > 0 {
			s.acc = l.MustItem(1)
			s.i = 1
		}
		putScratch(ctx, "combineState", s)
		st = s
	}
	s := st.(*hofState)
	if s.list.Len() == 0 {
		return value.Number(0), Done, nil
	}
	if v, got := takeCallResult(ctx, argc); got {
		s.acc = v
	}
	if s.i >= s.list.Len() {
		return s.acc, Done, nil
	}
	ring, err := hofRing(ctx.Inputs[1])
	if err != nil {
		return nil, Done, err
	}
	item := s.list.MustItem(s.i + 1)
	s.i++
	if err := p.CallRing(ring, []value.Value{s.acc, item}); err != nil {
		return nil, Done, err
	}
	return nil, Again, nil
}

// primForEach is the stock sequential "for each _ in _ { _ }": the loop
// parallelForEach falls back to in sequential mode.
func primForEach(p *Process, ctx *Context) (value.Value, Control, error) {
	const argc = 3
	st, ok := scratchState(ctx, argc)
	if !ok {
		l, err := asList(ctx.Inputs[1])
		if err != nil {
			return nil, Done, err
		}
		s := &hofState{list: l}
		putScratch(ctx, "forEachState", s)
		st = s
	}
	s := st.(*hofState)
	if s.i >= s.list.Len() {
		return nil, Done, nil
	}
	body, ok := ctx.Inputs[2].(*blocks.Ring)
	if !ok {
		return nil, Done, errors.New("for each needs a script body")
	}
	item := s.list.MustItem(s.i + 1)
	s.i++
	iter := NewFrame(ringEnv(body, p))
	iter.Declare(ctx.Inputs[0].String(), item)
	p.PushYield() // unconditional: see primRepeat in prims_control.go
	if err := p.PushBodyInFrame(ctx.Inputs[2], iter); err != nil {
		return nil, Done, err
	}
	return nil, Again, nil
}
