package interp

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"

	"repro/internal/blocks"
	"repro/internal/stage"
	"repro/internal/value"
	"repro/internal/vclock"
)

// DefaultSliceOps is the default time slice: how many evaluator operations
// one process may run per scheduler round before the thread manager moves
// on ("each process executes for a short amount of time called a time
// slice before yielding to the next process", §2).
const DefaultSliceOps = 1000

// Machine is Snap!'s run-time system: the thread manager at "the heart of
// the Snap! programming environment" (§2). It owns the project, the stage,
// the virtual clock, and the process queue, and it steps every live
// process one at a time in an interleaved fashion — concurrency on a
// single thread of control, the paper's foil for the true parallelism of
// the Web-Worker blocks.
type Machine struct {
	Project *blocks.Project
	Stage   *stage.Stage
	// SliceOps is the per-process op budget per round.
	SliceOps int
	// TraceBlock, when set, is invoked before every block application —
	// the hook behind snapvm's -traceblocks "watch the blocks run" mode
	// and a test observation point. Keep it fast; it runs on the
	// interpreter's hot path.
	TraceBlock func(p *Process, b *blocks.Block)
	// TraceID labels this machine's work in the observability layer
	// (internal/obs): the parallel blocks stamp it onto the worker jobs
	// they launch, so a governed session's span and its jobs' spans
	// share an ID. Set before GreenFlag; empty means unlabeled.
	TraceID string

	procs       []*Process
	rng         *rand.Rand
	fs          FileSystem
	globalFrame *Frame
	spriteFrame map[*blocks.Sprite]*Frame
	actorSprite map[*stage.Actor]*blocks.Sprite
	errs        []error
	round       int64
	steps       int64
	evalWrap    *blocks.Script
	// The RunScript scratch pair, minted once per machine: the sprite is
	// immutable and the actor is rehomed to its just-added state before
	// each run, so reuse is indistinguishable from a fresh AddActor
	// (except for the actor ID, which no script output exposes).
	scratchSp    *blocks.Sprite
	scratchActor *stage.Actor
}

// NewMachine builds a machine for the project over a fresh stage driven by
// the given clock (nil for a plain clock). Every sprite gets a stage actor.
func NewMachine(project *blocks.Project, clock *vclock.Clock) *Machine {
	m := &Machine{
		Project:  project,
		Stage:    stage.New(clock),
		SliceOps: DefaultSliceOps,
	}
	// Initial variable values are deep-cloned out of the project: the
	// project may be a shared, content-address-cached AST serving many
	// concurrent machines (internal/progcache), so a session mutating a
	// list global must mutate its own copy. Scalars share (CloneValue
	// returns them as-is); only containers pay a copy, once per machine.
	m.globalFrame = NewFrame(nil)
	for name, v := range project.Globals {
		m.globalFrame.Declare(name, value.CloneValue(v))
	}
	// The sprite and actor maps stay nil for spriteless projects (the
	// eval-session pattern: one scratch machine per request) — reads on
	// nil maps are legal, and the write paths lazily allocate.
	for _, sp := range project.Sprites {
		f := NewFrame(m.globalFrame)
		for name, v := range sp.Variables {
			f.Declare(name, value.CloneValue(v))
		}
		m.setSpriteFrame(sp, f)
		actor := m.Stage.AddActor(sp.Name, sp.X, sp.Y)
		m.bindActor(actor, sp)
	}
	return m
}

// Reset returns the machine to its post-NewMachine state over the same
// project, stage, and clock: every process, actor, trace line, error, and
// accumulated counter is dropped and the scopes are rebuilt from the
// project. Eval-style servers run one scratch machine per request; a pool
// of Reset machines makes that pattern pay only per-script costs. Scopes
// are rebuilt as fresh frames, not recycled ones, so ring values that
// escaped a previous run keep their captured environment intact.
func (m *Machine) Reset() {
	m.Stage.Reset()
	m.SliceOps = DefaultSliceOps
	m.TraceBlock = nil
	m.TraceID = ""
	m.rng = nil
	m.fs = nil
	for i := range m.procs {
		m.procs[i] = nil
	}
	m.procs = m.procs[:0]
	m.errs = nil
	m.round, m.steps = 0, 0
	if m.evalWrap != nil {
		// Unpin the last evaluated reporter; the shell itself is reused.
		m.evalWrap.Blocks[0].Inputs[0] = nil
	}
	// Stage.Reset dropped the actors, the scratch one included.
	m.scratchSp, m.scratchActor = nil, nil
	m.globalFrame = NewFrame(nil)
	for name, v := range m.Project.Globals {
		m.globalFrame.Declare(name, value.CloneValue(v))
	}
	clear(m.spriteFrame)
	clear(m.actorSprite)
	for _, sp := range m.Project.Sprites {
		f := NewFrame(m.globalFrame)
		for name, v := range sp.Variables {
			f.Declare(name, value.CloneValue(v))
		}
		m.setSpriteFrame(sp, f)
		actor := m.Stage.AddActor(sp.Name, sp.X, sp.Y)
		m.bindActor(actor, sp)
	}
}

// Rand is the machine's deterministic random stream (seeded; reproducible
// runs are worth more to a test suite than entropy). SeedRand reseeds it.
func (m *Machine) Rand() *rand.Rand {
	if m.rng == nil {
		m.rng = rand.New(rand.NewSource(1))
	}
	return m.rng
}

// SeedRand reseeds the machine's random stream.
func (m *Machine) SeedRand(seed int64) { m.rng = rand.New(rand.NewSource(seed)) }

// FS is the machine's file store for the §6.3 file blocks; it defaults to
// an in-memory MemFS.
func (m *Machine) FS() FileSystem {
	if m.fs == nil {
		m.fs = MemFS{}
	}
	return m.fs
}

// SetFS attaches a file store (e.g. a DirFS rooted at a project
// directory).
func (m *Machine) SetFS(fs FileSystem) { m.fs = fs }

// GlobalFrame exposes the project-global scope.
func (m *Machine) GlobalFrame() *Frame { return m.globalFrame }

func (m *Machine) setSpriteFrame(sp *blocks.Sprite, f *Frame) {
	if m.spriteFrame == nil {
		m.spriteFrame = map[*blocks.Sprite]*Frame{}
	}
	m.spriteFrame[sp] = f
}

func (m *Machine) bindActor(a *stage.Actor, sp *blocks.Sprite) {
	if m.actorSprite == nil {
		m.actorSprite = map[*stage.Actor]*blocks.Sprite{}
	}
	m.actorSprite[a] = sp
}

// SpriteFrame returns the sprite-level scope.
func (m *Machine) SpriteFrame(sp *blocks.Sprite) *Frame { return m.spriteFrame[sp] }

// SpawnScript starts a new process running script on behalf of (sprite,
// actor); it begins executing on the next scheduler round, like a script
// whose hat block just fired.
func (m *Machine) SpawnScript(sp *blocks.Sprite, actor *stage.Actor, script *blocks.Script) *Process {
	base := m.globalFrame
	if f, ok := m.spriteFrame[sp]; ok {
		base = f
	}
	// Build the process without its initial tree context: when the spawn
	// hook installs a bytecode executor the context is never used, and
	// this is the hot path of every eval-style request.
	p := &Process{Machine: m, Sprite: sp, Actor: actor}
	p.frameStore.parent = base
	p.rootFrame = &p.frameStore
	if spawnHook != nil {
		spawnHook(m, p, script)
	}
	if p.exec == nil {
		p.context = &Context{Expr: script, Frame: p.rootFrame}
	}
	m.procs = append(m.procs, p)
	return p
}

// SpawnExpr starts a process evaluating an arbitrary expression node (used
// by the REPL-style entry points and by worker-driver blocks).
func (m *Machine) SpawnExpr(sp *blocks.Sprite, actor *stage.Actor, expr any, frame *Frame) *Process {
	if frame == nil {
		frame = m.globalFrame
	}
	p := &Process{Machine: m, Sprite: sp, Actor: actor}
	p.frameStore.parent = frame
	p.rootFrame = &p.frameStore
	p.context = &Context{Expr: expr, Frame: p.rootFrame}
	m.procs = append(m.procs, p)
	return p
}

// GreenFlag fires the "when green flag clicked" hats of every sprite and
// returns the started processes.
func (m *Machine) GreenFlag() []*Process {
	var started []*Process
	for _, sp := range m.Project.Sprites {
		actor := m.Stage.Actor(sp.Name)
		for _, hs := range sp.Scripts {
			if hs.Hat == blocks.HatGreenFlag {
				started = append(started, m.SpawnScript(sp, actor, hs.Script))
			}
		}
	}
	return started
}

// PressKey fires "when <key> key pressed" hats.
func (m *Machine) PressKey(key string) []*Process {
	var started []*Process
	for _, sp := range m.Project.Sprites {
		actor := m.Stage.Actor(sp.Name)
		for _, hs := range sp.Scripts {
			if hs.Hat == blocks.HatKeyPress && hs.Arg == key {
				started = append(started, m.SpawnScript(sp, actor, hs.Script))
			}
		}
	}
	return started
}

// StartBroadcast fires "when I receive <msg>" hats across all sprites and
// returns the started processes (doBroadcastAndWait polls them).
func (m *Machine) StartBroadcast(msg string) []*Process {
	var started []*Process
	for _, sp := range m.Project.Sprites {
		actor := m.Stage.Actor(sp.Name)
		for _, hs := range sp.Scripts {
			if hs.Hat == blocks.HatBroadcast && hs.Arg == msg {
				started = append(started, m.SpawnScript(sp, actor, hs.Script))
			}
		}
	}
	return started
}

// CreateClone clones the actor on stage and fires the sprite's "when I
// start as a clone" hats on behalf of the clone. It returns the clone.
func (m *Machine) CreateClone(parent *stage.Actor) *stage.Actor {
	clone := m.Stage.Clone(parent)
	sp := m.actorSprite[parent]
	if sp == nil && parent.Parent != nil {
		sp = m.actorSprite[parent.Parent]
	}
	if sp != nil {
		m.bindActor(clone, sp)
		for _, hs := range sp.Scripts {
			if hs.Hat == blocks.HatCloneStart {
				m.SpawnScript(sp, clone, hs.Script)
			}
		}
	}
	return clone
}

// CloneSilent clones the actor on stage without firing "when I start as a
// clone" hats. The parallelForEach block spawns its worker clones this way:
// they run the block's nested script, not the sprite's clone hats (§3.3
// uses "Snap!'s intrinsic cloning feature in a novel way").
func (m *Machine) CloneSilent(parent *stage.Actor) *stage.Actor {
	clone := m.Stage.Clone(parent)
	sp := m.actorSprite[parent]
	if sp != nil {
		m.bindActor(clone, sp)
	}
	return clone
}

// RemoveClone deletes a clone actor and stops every process running on its
// behalf.
func (m *Machine) RemoveClone(a *stage.Actor) {
	if a == nil || !a.IsClone() {
		return
	}
	for _, p := range m.procs {
		if p.Actor == a {
			p.Stop()
		}
	}
	delete(m.actorSprite, a)
	m.Stage.Remove(a)
}

// StopAll stops every process (the red stop button).
func (m *Machine) StopAll() {
	for _, p := range m.procs {
		p.Stop()
	}
}

// Processes returns the live process list (snapshot).
func (m *Machine) Processes() []*Process {
	out := make([]*Process, 0, len(m.procs))
	for _, p := range m.procs {
		if !p.Done() {
			out = append(out, p)
		}
	}
	return out
}

// Round reports how many scheduler rounds have run.
func (m *Machine) Round() int64 { return m.round }

// Steps reports the cumulative evaluator ops executed across all processes
// and rounds — the unit RunLimits.MaxSteps budgets.
func (m *Machine) Steps() int64 { return m.steps }

// Errors returns the errors of processes that died, in death order.
func (m *Machine) Errors() []error { return m.errs }

// Step runs one scheduler round: every live process gets one time slice,
// then the virtual clock ticks once if any process consumed a wait
// timestep this round (concurrently waiting processes share the timestep —
// that sharing is exactly why the parallel concession stand pours three
// drinks in three timesteps). It reports whether live processes remain.
//
// Step iterates the process list in place rather than snapshotting it: a
// process polling a parallel job yields thousands of rounds per job, and
// the per-round snapshot slice was the single largest allocation source in
// the whole system (97% of allocs on the E2 parallelMap bench). Processes
// spawned during the round (clones, broadcasts) are appended behind the
// iteration bound and first run next round, exactly as with the snapshot.
func (m *Machine) Step() bool {
	m.compact()
	if len(m.procs) == 0 {
		return false
	}
	m.round++
	anyWait := false
	for i, bound := 0, len(m.procs); i < bound; i++ {
		p := m.procs[i]
		if p.Done() {
			continue
		}
		p.consumedWait = false
		m.steps += int64(p.RunStep(m.SliceOps))
		if p.consumedWait {
			anyWait = true
		}
		if p.Done() {
			m.reap(p)
		}
	}
	if anyWait {
		m.Stage.Clock.Tick()
	}
	m.compact()
	return len(m.procs) > 0
}

func (m *Machine) reap(p *Process) {
	if p.err != nil {
		m.errs = append(m.errs, p.err)
	}
	if p.OnDone != nil {
		cb := p.OnDone
		p.OnDone = nil
		cb(p)
	}
}

func (m *Machine) compact() {
	live := m.procs[:0]
	for _, p := range m.procs {
		if !p.Done() {
			live = append(live, p)
		}
	}
	m.procs = live
}

// ErrRoundLimit reports that Run hit its round cap with processes alive.
var ErrRoundLimit = errors.New("machine round limit reached with live processes")

// ErrStepLimit reports that RunContext exhausted its evaluator-op budget
// with processes alive — the hard ceiling a hosted session runs under.
var ErrStepLimit = errors.New("machine step budget exhausted with live processes")

// RunLimits bounds one RunContext call. The zero value reproduces the
// legacy Run defaults: a generous round cap and no step budget.
type RunLimits struct {
	// MaxRounds caps scheduler rounds; 0 means a generous default (1M).
	MaxRounds int
	// MaxSteps caps cumulative evaluator ops across all processes; 0 means
	// unlimited. The cap is enforced between rounds, so a run may overshoot
	// by at most one round's worth of ops (live processes × remaining
	// slice).
	MaxSteps int64
}

// Run steps the machine until no processes remain or maxRounds elapse
// (0 means a generous default). It returns the first process error, the
// round-limit error, or nil.
func (m *Machine) Run(maxRounds int) error {
	return m.RunContext(context.Background(), RunLimits{MaxRounds: maxRounds})
}

// RunContext is Run under governance: it additionally stops — killing every
// live process and canceling their in-flight parallel jobs — when the
// context is done (wall-clock deadlines, session cancellation) or when the
// cumulative step budget runs out. The returned error wraps ctx's cause or
// ErrStepLimit respectively, so callers can classify the outcome with
// errors.Is.
func (m *Machine) RunContext(ctx context.Context, lim RunLimits) error {
	maxRounds := lim.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 1_000_000
	}
	done := ctx.Done()
	baseSlice := m.SliceOps
	defer func() { m.SliceOps = baseSlice }()
	for i := 0; i < maxRounds; i++ {
		if done != nil {
			select {
			case <-done:
				m.Kill()
				return fmt.Errorf("machine run canceled after %d rounds, %d steps: %w",
					m.round, m.steps, context.Cause(ctx))
			default:
			}
		}
		if lim.MaxSteps > 0 {
			rem := lim.MaxSteps - m.steps
			if rem <= 0 {
				m.Kill()
				return fmt.Errorf("%w (after %d rounds, %d steps)", ErrStepLimit, m.round, m.steps)
			}
			// Clamp the per-process slice so one round overshoots the
			// budget by as little as possible.
			if rem < int64(baseSlice) {
				m.SliceOps = int(rem)
			} else {
				m.SliceOps = baseSlice
			}
		}
		if !m.Step() {
			if len(m.errs) > 0 {
				return m.errs[0]
			}
			return nil
		}
		// Hand the OS thread to worker goroutines between rounds. A
		// process polling a parallel job spins through rounds with no
		// allocation and no blocking, which on a loaded (or single-CPU)
		// runtime would starve the very workers it is waiting for until
		// async preemption kicks in ~10ms later. One Gosched per round
		// is noise next to a full time slice of interpretation and
		// bounds the poll→resolve latency to a scheduler pass.
		runtime.Gosched()
	}
	if len(m.errs) > 0 {
		return m.errs[0]
	}
	return fmt.Errorf("%w (after %d rounds)", ErrRoundLimit, maxRounds)
}

// Kill stops every live process AND fires its completion hooks immediately.
// Unlike StopAll — which only flags the processes and relies on a further
// Step to reap them — Kill is what a dying session calls: the OnDone hooks
// are how in-flight parallel jobs get canceled (core's cancelOnDeath), so
// they must run even though the scheduler will never turn again.
func (m *Machine) Kill() {
	for _, p := range m.procs {
		if p.Done() {
			continue // already reaped by the Step that saw it finish
		}
		p.Stop()
		m.reap(p)
	}
	m.compact()
}

// RunScript is the convenience entry point used by tests and examples: it
// runs a single script to completion on a scratch sprite and returns the
// value of the script's last doReport (or Nothing).
func (m *Machine) RunScript(script *blocks.Script) (value.Value, error) {
	// A bare sprite, no frame registration: the scratch sprite declares no
	// variables (lookups fall through to the global frame either way, and
	// custom-block environments fall back to GlobalFrame), and no maps
	// are paid on a path that exists to run one script and be thrown away.
	if m.scratchSp == nil {
		m.scratchSp = &blocks.Sprite{Name: "__main__"}
		m.scratchActor = m.Stage.AddActor(m.scratchSp.Name, 0, 0)
	} else {
		m.scratchActor.Rehome(0, 0)
	}
	p := m.SpawnScript(m.scratchSp, m.scratchActor, script)
	if err := m.Run(0); err != nil {
		return nil, err
	}
	return p.Result(), nil
}

// EvalReporter evaluates a single reporter block to a value — dropping a
// reporter on the scripting area and clicking it.
func (m *Machine) EvalReporter(b *blocks.Block) (value.Value, error) {
	// The report wrapper is machine-owned and reused across calls: the
	// program caches key lowered bytecode by content, never by the
	// wrapper's identity, so splicing a new reporter into the same script
	// shell is invisible to them and saves three allocations per request.
	if m.evalWrap == nil {
		m.evalWrap = blocks.NewScript(blocks.Report(b))
	} else {
		m.evalWrap.Blocks[0].Inputs[0] = b
	}
	return m.RunScript(m.evalWrap)
}
