package interp

import (
	"repro/internal/blocks"
	"repro/internal/value"
)

// This file is the seam between the tree-walking evaluator and an external
// bytecode executor (internal/vm). A process normally runs its context
// stack through evaluateContext; a process with an installed Exec instead
// delegates its whole time slice to the executor, which drives the same
// Process — same frames, same yield flag, same warp counter, same stop and
// error states — so machine-level scheduling and governance cannot tell
// the two apart. The executor splices individual un-lowerable subtrees
// back through the context stack (BeginSplice/StepSplice), which is how
// coverage grows incrementally while semantics stay exact.

// Exec is an external executor driving a Process. Step runs until the
// process yields, finishes, errors, or maxOps operations elapse, and
// returns the operations consumed (the unit machine step budgets count).
// Done reports whether the executed program has completed.
type Exec interface {
	Step(p *Process, maxOps int) int
	Done() bool
}

// spawnHook, when set, is consulted for every machine-owned script process
// right after it is created; the hook may install an Exec on it. Installed
// by internal/vm; nil means every process tree-walks.
var spawnHook func(m *Machine, p *Process, script *blocks.Script)

// SetSpawnHook installs the process-creation hook. Passing nil removes it.
// Not safe to call concurrently with running machines; intended for
// package init and tests.
func SetSpawnHook(h func(m *Machine, p *Process, script *blocks.Script)) { spawnHook = h }

// InstallExec attaches an executor to a freshly spawned process and
// retires its initial tree context: from now on RunStep delegates to e.
func (p *Process) InstallExec(e Exec) {
	p.exec = e
	p.context = nil
}

// DetachExec removes a finished executor so its resources can be
// recycled. The process must already be halted: with no executor and no
// context it keeps reporting Done.
func (p *Process) DetachExec() { p.exec = nil }

// Stopped reports whether the process has been stopped (Stop/Kill).
func (p *Process) Stopped() bool { return p.stopped }

// Fail kills the process with err, exactly as an evaluator error would.
func (p *Process) Fail(err error) { p.fail(err) }

// ReportResult records the process result (an executor's doReport).
func (p *Process) ReportResult(v value.Value) { p.result = v }

// RequestYield sets the cooperative yield flag, the executor-side
// equivalent of evaluating a doYield marker.
func (p *Process) RequestYield() { p.readyToYield = true }

// YieldPending reports whether a yield has been requested this slice.
func (p *Process) YieldPending() bool { return p.readyToYield }

// ClearYield consumes a pending yield without yielding — what the
// tree-walker does at the top of its loop while warped.
func (p *Process) ClearYield() { p.readyToYield = false }

// Reify builds the closure value a RingNode evaluates to, capturing f.
func (p *Process) Reify(r blocks.RingNode, f *Frame) *blocks.Ring { return p.reify(r, f) }

// CheckListLen exposes the process-wide list-size cap check to executors.
func CheckListLen(n int) error { return checkListLen(n) }

// CheckTextLen exposes the process-wide text-size cap check to executors.
func CheckTextLen(n int) error { return checkTextLen(n) }

// spliceRoot is the pseudo-context an executor plants under a spliced
// subtree: when the subtree's value lands in its Inputs the splice is
// complete. It is to the executor what collector is to detached calls.
type spliceRoot struct{}

// BeginSplice pushes node for tree evaluation in frame f, fenced by a
// spliceRoot. The executor then drives it with StepSplice until done.
func (p *Process) BeginSplice(node any, f *Frame) {
	p.pushContext(spliceRoot{}, f)
	p.pushContext(node, f)
}

// StepSplice advances a spliced subtree by at most maxOps evaluator
// operations (0 = unlimited). It returns the subtree's value, the ops
// consumed, whether the splice is finished, and whether the subtree
// escaped the fence (a doReport unwound past it or the process died — the
// process result/error, not v, then carries the outcome). A false done
// with a pending yield means the process must yield; a false done without
// one means the op budget ran out.
func (p *Process) StepSplice(maxOps int) (v value.Value, ops int, done, escaped bool) {
	for {
		if p.stopped || p.err != nil {
			return nil, ops, true, true
		}
		if p.context == nil {
			return nil, ops, true, true
		}
		if _, isRoot := p.context.Expr.(spliceRoot); isRoot {
			v = value.Nothing{}
			if len(p.context.Inputs) > 0 {
				v = p.context.Inputs[0]
			}
			p.popContext()
			return v, ops, true, false
		}
		if p.readyToYield && p.warp == 0 {
			return nil, ops, false, false
		}
		p.readyToYield = false
		if err := p.evaluateContext(); err != nil {
			p.fail(err)
			return nil, ops + 1, true, true
		}
		ops++
		if maxOps > 0 && ops >= maxOps {
			return nil, ops, false, false
		}
	}
}
