package interp

import (
	"testing"

	"repro/internal/value"
)

// These tests pin Frame scoping behavior independently of the interpreter,
// so the storage representation (map vs. inline slice) can change without
// moving the semantics.

func TestFrameShadowedSetWritesNearestScope(t *testing.T) {
	outer := NewFrame(nil)
	outer.Declare("x", value.NumInt(1))
	inner := NewFrame(outer)
	inner.Declare("x", value.NumInt(2))

	if err := inner.Set("x", value.NumInt(3)); err != nil {
		t.Fatal(err)
	}
	got, _ := inner.Get("x")
	if got.String() != "3" {
		t.Fatalf("inner x = %s, want 3", got)
	}
	got, _ = outer.Get("x")
	if got.String() != "1" {
		t.Fatalf("outer x = %s, want 1 (Set must write the nearest scope)", got)
	}

	// Set on a name declared only in the outer scope walks the chain up.
	outer.Declare("y", value.NumInt(10))
	if err := inner.Set("y", value.NumInt(20)); err != nil {
		t.Fatal(err)
	}
	got, _ = outer.Get("y")
	if got.String() != "20" {
		t.Fatalf("outer y = %s, want 20", got)
	}
}

func TestFrameSetUndeclaredErrors(t *testing.T) {
	f := NewFrame(nil)
	if err := f.Set("ghost", value.NumInt(1)); err == nil {
		t.Fatal("Set of an undeclared variable must error (red halo)")
	}
	if _, err := f.Get("ghost"); err == nil {
		t.Fatal("Get of an undeclared variable must error")
	}
}

func TestFrameDeclaredNilYieldsNothing(t *testing.T) {
	f := NewFrame(nil)
	f.Declare("v", nil)
	got, err := f.Get("v")
	if err != nil {
		t.Fatal(err)
	}
	if !value.IsNothing(got) {
		t.Fatalf("declared-nil variable should read as Nothing, got %T", got)
	}

	// Same through a child frame's chain lookup.
	child := NewFrame(f)
	got, err = child.Get("v")
	if err != nil || !value.IsNothing(got) {
		t.Fatalf("chained Get of declared-nil = %v, %v", got, err)
	}
}

func TestFrameDeclareOverwritesInPlace(t *testing.T) {
	f := NewFrame(nil)
	f.Declare("x", value.NumInt(1))
	f.Declare("x", value.NumInt(2))
	got, _ := f.Get("x")
	if got.String() != "2" {
		t.Fatalf("redeclare should overwrite, got %s", got)
	}
}

func TestFrameManyVariables(t *testing.T) {
	// Push well past any small-frame threshold and make sure every
	// binding stays reachable and shadowing still resolves innermost.
	f := NewFrame(nil)
	names := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j",
		"k", "l", "m", "n", "o", "p", "q", "r", "s", "t"}
	for i, name := range names {
		f.Declare(name, value.NumInt(i))
	}
	for i, name := range names {
		got, err := f.Get(name)
		if err != nil {
			t.Fatalf("Get(%q): %v", name, err)
		}
		if got != value.NumInt(i) {
			t.Fatalf("%q = %s, want %d", name, got, i)
		}
	}
	// Overwrite after the upgrade boundary.
	f.Declare("c", value.Str("new"))
	got, _ := f.Get("c")
	if got.String() != "new" {
		t.Fatalf("c = %s after redeclare", got)
	}
	// Set through a child still finds every outer binding.
	child := NewFrame(f)
	for _, name := range names {
		if err := child.Set(name, value.Str(name)); err != nil {
			t.Fatalf("Set(%q): %v", name, err)
		}
	}
	got, _ = f.Get("t")
	if got.String() != "t" {
		t.Fatalf("t = %s, want t", got)
	}
}

func TestTakeImplicitSingleArgFanOut(t *testing.T) {
	// With exactly one argument, every empty slot receives it — how
	// "map (_ × _) over L" squares a list.
	f := NewFrame(nil)
	f.BindImplicits([]value.Value{value.NumInt(6)})
	for i := 0; i < 3; i++ {
		got := f.TakeImplicit()
		if got.String() != "6" {
			t.Fatalf("take %d = %s, want 6 (single arg fans out)", i, got)
		}
	}
}

func TestTakeImplicitMultiArgLeftToRight(t *testing.T) {
	f := NewFrame(nil)
	f.BindImplicits([]value.Value{value.NumInt(1), value.NumInt(2)})
	if got := f.TakeImplicit(); got.String() != "1" {
		t.Fatalf("first take = %s", got)
	}
	if got := f.TakeImplicit(); got.String() != "2" {
		t.Fatalf("second take = %s", got)
	}
	// Exhausted implicits yield Nothing.
	if got := f.TakeImplicit(); !value.IsNothing(got) {
		t.Fatalf("exhausted take = %v, want Nothing", got)
	}
}

func TestTakeImplicitFindsBindingUpChain(t *testing.T) {
	outer := NewFrame(nil)
	outer.BindImplicits([]value.Value{value.NumInt(9)})
	inner := NewFrame(outer)
	if got := inner.TakeImplicit(); got.String() != "9" {
		t.Fatalf("chained implicit = %s, want 9", got)
	}
}
