// Package interp is the Snap! run-time system: a cooperative, time-sliced
// interpreter over the block AST of package blocks. It reproduces the
// execution model §2 of the paper describes — "multi-tasking ... executing
// all active processes one at a time in an interleaved fashion with only a
// single thread of control" — including the context-stack machinery that
// §4's Listing 2 builds on (pushContext, doYield, re-entrant primitives
// that stash scratch state in their context's input array).
//
// The interpreter itself is single-threaded concurrency, exactly like
// Snap!'s; true parallelism enters only through the worker-backed blocks
// registered by package core.
package interp

import (
	"fmt"

	"repro/internal/value"
)

// frameSmallMax is the inline-binding capacity of a Frame. Nearly every
// lexical scope the interpreter creates holds zero to three variables (a
// loop counter, a ring parameter, an item binding), so bindings live in a
// small linear-scanned slice; only a scope that grows past this threshold
// upgrades to a map. The interpreter allocates one Frame per block-body
// entry, which made the old always-allocated map the dominant frame cost.
const frameSmallMax = 8

// Frame is one lexical scope: a variable table chained to its parent.
// The chain for a sprite script is process frame → sprite frame → global
// frame, matching Snap!'s variable lookup order.
type Frame struct {
	parent *Frame

	// Inline storage for up to frameSmallMax bindings; names and vals are
	// parallel slices, linear-scanned (faster than a map at this size and
	// allocation-free for the common empty scope).
	names []string
	vals  []value.Value
	// vars is non-nil once the scope outgrows the inline storage; it then
	// holds every binding and the inline slices are retired.
	vars map[string]value.Value

	// implicits are the arguments bound to a ring's empty slots for the
	// duration of one call (§3.1: "the empty input signals where the
	// list inputs are to be inserted into the function").
	implicits   []value.Value
	implicitIdx int
}

// NewFrame creates a child scope of parent (parent may be nil for a root).
// The scope starts with no variable storage at all; most frames never
// declare a variable and stay that way.
func NewFrame(parent *Frame) *Frame {
	return &Frame{parent: parent}
}

// Declare creates (or overwrites) name in this frame.
func (f *Frame) Declare(name string, v value.Value) {
	if f.vars != nil {
		f.vars[name] = v
		return
	}
	for i, n := range f.names {
		if n == name {
			f.vals[i] = v
			return
		}
	}
	if len(f.names) >= frameSmallMax {
		f.vars = make(map[string]value.Value, len(f.names)+1)
		for i, n := range f.names {
			f.vars[n] = f.vals[i]
		}
		f.names, f.vals = nil, nil
		f.vars[name] = v
		return
	}
	f.names = append(f.names, name)
	f.vals = append(f.vals, v)
}

// lookup finds name in this single scope (not the chain), reporting
// whether it is declared here.
func (f *Frame) lookup(name string) (value.Value, bool) {
	if f.vars != nil {
		v, ok := f.vars[name]
		return v, ok
	}
	for i, n := range f.names {
		if n == name {
			return f.vals[i], true
		}
	}
	return nil, false
}

// Get looks name up the scope chain.
func (f *Frame) Get(name string) (value.Value, error) {
	for s := f; s != nil; s = s.parent {
		if v, ok := s.lookup(name); ok {
			if v == nil {
				return value.TheNothing, nil
			}
			return v, nil
		}
	}
	return nil, fmt.Errorf("a variable of name %q does not exist in this context", name)
}

// Set assigns to the nearest frame that declares name, erroring (Snap!'s
// red halo) when no scope declares it.
func (f *Frame) Set(name string, v value.Value) error {
	for s := f; s != nil; s = s.parent {
		if s.vars != nil {
			if _, ok := s.vars[name]; ok {
				s.vars[name] = v
				return nil
			}
			continue
		}
		for i, n := range s.names {
			if n == name {
				s.vals[i] = v
				return nil
			}
		}
	}
	return fmt.Errorf("a variable of name %q does not exist in this context", name)
}

// BindImplicits installs the positional arguments that empty slots consume.
func (f *Frame) BindImplicits(args []value.Value) {
	f.implicits = args
	f.implicitIdx = 0
}

// TakeImplicit yields the argument for the next empty slot encountered.
// With exactly one argument, every empty slot receives it (Snap! fills all
// empties with the single input, which is how "map (_ × _) over L" squares
// a list); with several, empties consume them left to right.
func (f *Frame) TakeImplicit() value.Value {
	for s := f; s != nil; s = s.parent {
		if s.implicits == nil {
			continue
		}
		if len(s.implicits) == 1 {
			return s.implicits[0]
		}
		if s.implicitIdx < len(s.implicits) {
			v := s.implicits[s.implicitIdx]
			s.implicitIdx++
			return v
		}
		return value.TheNothing
	}
	return value.TheNothing
}
