// Package interp is the Snap! run-time system: a cooperative, time-sliced
// interpreter over the block AST of package blocks. It reproduces the
// execution model §2 of the paper describes — "multi-tasking ... executing
// all active processes one at a time in an interleaved fashion with only a
// single thread of control" — including the context-stack machinery that
// §4's Listing 2 builds on (pushContext, doYield, re-entrant primitives
// that stash scratch state in their context's input array).
//
// The interpreter itself is single-threaded concurrency, exactly like
// Snap!'s; true parallelism enters only through the worker-backed blocks
// registered by package core.
package interp

import (
	"fmt"

	"repro/internal/value"
)

// Frame is one lexical scope: a variable table chained to its parent.
// The chain for a sprite script is process frame → sprite frame → global
// frame, matching Snap!'s variable lookup order.
type Frame struct {
	parent *Frame
	vars   map[string]value.Value

	// implicits are the arguments bound to a ring's empty slots for the
	// duration of one call (§3.1: "the empty input signals where the
	// list inputs are to be inserted into the function").
	implicits   []value.Value
	implicitIdx int
}

// NewFrame creates a child scope of parent (parent may be nil for a root).
func NewFrame(parent *Frame) *Frame {
	return &Frame{parent: parent, vars: map[string]value.Value{}}
}

// Declare creates (or overwrites) name in this frame.
func (f *Frame) Declare(name string, v value.Value) {
	f.vars[name] = v
}

// Get looks name up the scope chain.
func (f *Frame) Get(name string) (value.Value, error) {
	for s := f; s != nil; s = s.parent {
		if v, ok := s.vars[name]; ok {
			if v == nil {
				return value.Nothing{}, nil
			}
			return v, nil
		}
	}
	return nil, fmt.Errorf("a variable of name %q does not exist in this context", name)
}

// Set assigns to the nearest frame that declares name, erroring (Snap!'s
// red halo) when no scope declares it.
func (f *Frame) Set(name string, v value.Value) error {
	for s := f; s != nil; s = s.parent {
		if _, ok := s.vars[name]; ok {
			s.vars[name] = v
			return nil
		}
	}
	return fmt.Errorf("a variable of name %q does not exist in this context", name)
}

// BindImplicits installs the positional arguments that empty slots consume.
func (f *Frame) BindImplicits(args []value.Value) {
	f.implicits = args
	f.implicitIdx = 0
}

// TakeImplicit yields the argument for the next empty slot encountered.
// With exactly one argument, every empty slot receives it (Snap! fills all
// empties with the single input, which is how "map (_ × _) over L" squares
// a list); with several, empties consume them left to right.
func (f *Frame) TakeImplicit() value.Value {
	for s := f; s != nil; s = s.parent {
		if s.implicits == nil {
			continue
		}
		if len(s.implicits) == 1 {
			return s.implicits[0]
		}
		if s.implicitIdx < len(s.implicits) {
			v := s.implicits[s.implicitIdx]
			s.implicitIdx++
			return v
		}
		return value.Nothing{}
	}
	return value.Nothing{}
}
