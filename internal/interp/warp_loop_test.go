package interp_test

import (
	"testing"

	"repro/internal/blocks"
	"repro/internal/interp"
	"repro/internal/parse"
	"repro/internal/vm"
)

// Regression: loop primitives used to skip the yield marker inside warp,
// so the body script's Nothing result was delivered into the loop's own
// input slot. For doUntil — which clears its inputs so the condition is
// re-read each iteration — the stale Nothing became a permanently-false
// condition and a warped until never terminated (found by the evo
// cross-tier stress engine: the bytecode tier ran the same program
// correctly). The yield marker is now pushed unconditionally, exactly as
// Snap! does; while warped the scheduler ignores it, but it still
// swallows the body's return value.
func TestWarpedLoopsTerminate(t *testing.T) {
	// The bug was in the tree walker; pin that engine explicitly.
	vm.SetEnabled(false)
	defer vm.SetEnabled(true)

	for _, tc := range []struct {
		name, src, want string
	}{
		{"warp-until", `
			(declare c)
			(warp (do (set c 5) (until (< $c 0) (do (change c -1)))))
			(report $c)`, "-1"},
		{"warp-repeat", `
			(declare n)
			(set n 0)
			(warp (do (repeat 4 (do (change n 1)))))
			(report $n)`, "4"},
		{"warp-for", `
			(declare n)
			(set n 0)
			(warp (do (for i 1 5 (do (change n $i)))))
			(report $n)`, "15"},
		{"warp-foreach", `
			(declare n)
			(set n 0)
			(warp (do (foreach x (list 1 2 3) (do (change n $x)))))
			(report $n)`, "6"},
		{"nested-warp-until", `
			(declare a b)
			(set b 0)
			(warp (do
			  (set a 2)
			  (until (< $a 0) (do
			    (change a -1)
			    (warp (do (change b 1)))))))
			(report $b)`, "3"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, err := parse.Script(tc.src)
			if err != nil {
				t.Fatal(err)
			}
			m := interp.NewMachine(blocks.NewProject("warp"), nil)
			v, err := m.RunScript(s)
			if err != nil {
				t.Fatal(err)
			}
			if v == nil || v.String() != tc.want {
				t.Fatalf("got %v, want %s", v, tc.want)
			}
		})
	}
}
