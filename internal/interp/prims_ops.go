package interp

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync/atomic"

	"repro/internal/value"
)

// This file implements the operator (green) and text opcodes.

func init() {
	RegisterPrimitive("reportSum", numericBinary(func(a, b float64) float64 { return a + b }))
	RegisterPrimitive("reportDifference", numericBinary(func(a, b float64) float64 { return a - b }))
	RegisterPrimitive("reportProduct", numericBinary(func(a, b float64) float64 { return a * b }))
	RegisterPrimitive("reportQuotient", primQuotient)
	RegisterPrimitive("reportModulus", primModulus)
	RegisterPrimitive("reportRound", primRound)
	RegisterPrimitive("reportMonadic", primMonadic)
	RegisterPrimitive("reportRandom", primRandom)
	RegisterPrimitive("reportLessThan", primLessThan)
	RegisterPrimitive("reportEquals", primEquals)
	RegisterPrimitive("reportGreaterThan", primGreaterThan)
	RegisterPrimitive("reportAnd", primAnd)
	RegisterPrimitive("reportOr", primOr)
	RegisterPrimitive("reportNot", primNot)
	RegisterPrimitive("reportIfElse", primReportIfElse)
	RegisterPrimitive("reportJoinWords", primJoin)
	RegisterPrimitive("reportLetter", primLetter)
	RegisterPrimitive("reportStringSize", primStringSize)
	RegisterPrimitive("reportTextSplit", primTextSplit)
}

func numericBinary(f func(a, b float64) float64) Primitive {
	return func(p *Process, ctx *Context) (value.Value, Control, error) {
		a, err := value.ToNumber(ctx.Inputs[0])
		if err != nil {
			return nil, Done, err
		}
		b, err := value.ToNumber(ctx.Inputs[1])
		if err != nil {
			return nil, Done, err
		}
		return value.Num(f(float64(a), float64(b))), Done, nil
	}
}

func primQuotient(p *Process, ctx *Context) (value.Value, Control, error) {
	a, err := value.ToNumber(ctx.Inputs[0])
	if err != nil {
		return nil, Done, err
	}
	b, err := value.ToNumber(ctx.Inputs[1])
	if err != nil {
		return nil, Done, err
	}
	if b == 0 {
		return nil, Done, fmt.Errorf("division by zero")
	}
	return value.Num(float64(a / b)), Done, nil
}

func primModulus(p *Process, ctx *Context) (value.Value, Control, error) {
	a, err := value.ToNumber(ctx.Inputs[0])
	if err != nil {
		return nil, Done, err
	}
	b, err := value.ToNumber(ctx.Inputs[1])
	if err != nil {
		return nil, Done, err
	}
	if b == 0 {
		return nil, Done, fmt.Errorf("modulus by zero")
	}
	// Snap!'s mod matches the sign of the divisor.
	m := math.Mod(float64(a), float64(b))
	if m != 0 && (m < 0) != (float64(b) < 0) {
		m += float64(b)
	}
	return value.Num(m), Done, nil
}

func primRound(p *Process, ctx *Context) (value.Value, Control, error) {
	a, err := value.ToNumber(ctx.Inputs[0])
	if err != nil {
		return nil, Done, err
	}
	return value.Num(math.Round(float64(a))), Done, nil
}

func primMonadic(p *Process, ctx *Context) (value.Value, Control, error) {
	fn := strings.ToLower(ctx.Inputs[0].String())
	a, err := value.ToNumber(ctx.Inputs[1])
	if err != nil {
		return nil, Done, err
	}
	x := float64(a)
	var r float64
	switch fn {
	case "sqrt":
		if x < 0 {
			return nil, Done, fmt.Errorf("square root of a negative number")
		}
		r = math.Sqrt(x)
	case "abs":
		r = math.Abs(x)
	case "floor":
		r = math.Floor(x)
	case "ceiling":
		r = math.Ceil(x)
	case "sin":
		r = math.Sin(x * math.Pi / 180)
	case "cos":
		r = math.Cos(x * math.Pi / 180)
	case "tan":
		r = math.Tan(x * math.Pi / 180)
	case "asin":
		r = math.Asin(x) * 180 / math.Pi
	case "acos":
		r = math.Acos(x) * 180 / math.Pi
	case "atan":
		r = math.Atan(x) * 180 / math.Pi
	case "ln":
		r = math.Log(x)
	case "log":
		r = math.Log10(x)
	case "e^":
		r = math.Exp(x)
	case "10^":
		r = math.Pow(10, x)
	default:
		return nil, Done, fmt.Errorf("unknown function %q", fn)
	}
	return value.Num(r), Done, nil
}

// workerSeed derives a distinct seed for each detached (worker) process.
// Detached processes run concurrently on the worker pool and rand.Rand is
// not goroutine-safe, so they cannot share one stream the way they briefly
// did — that was a data race. Each process lazily builds its own stream
// from the next counter value instead.
var workerSeed atomic.Int64

func init() { workerSeed.Store(0x5eed) }

// detachedRand returns the process-local random stream, creating it on
// first use. Only detached processes (Machine == nil) call this.
func (p *Process) detachedRand() *rand.Rand {
	if p.rng == nil {
		p.rng = rand.New(rand.NewSource(mix64(workerSeed.Add(1))))
	}
	return p.rng
}

// mix64 is the splitmix64 finalizer. rand.NewSource does not scramble its
// seed, so feeding it raw counter values gives consecutive processes
// visibly correlated streams (their first draws coincide); the finalizer
// spreads neighboring counters across the whole seed space.
func mix64(z int64) int64 {
	x := uint64(z) * 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x)
}

func primRandom(p *Process, ctx *Context) (value.Value, Control, error) {
	a, err := value.ToNumber(ctx.Inputs[0])
	if err != nil {
		return nil, Done, err
	}
	b, err := value.ToNumber(ctx.Inputs[1])
	if err != nil {
		return nil, Done, err
	}
	lo, hi := float64(a), float64(b)
	if lo > hi {
		lo, hi = hi, lo
	}
	var rng *rand.Rand
	if p.Machine != nil {
		rng = p.Machine.Rand()
	} else {
		rng = p.detachedRand()
	}
	if a.IsInt() && b.IsInt() {
		return value.NumInt(int(lo) + rng.Intn(int(hi)-int(lo)+1)), Done, nil
	}
	return value.Num(lo + rng.Float64()*(hi-lo)), Done, nil
}

func primLessThan(p *Process, ctx *Context) (value.Value, Control, error) {
	lt, err := value.Less(ctx.Inputs[0], ctx.Inputs[1])
	return value.BoolVal(lt), Done, err
}

func primEquals(p *Process, ctx *Context) (value.Value, Control, error) {
	return value.BoolVal(value.Equal(ctx.Inputs[0], ctx.Inputs[1])), Done, nil
}

func primGreaterThan(p *Process, ctx *Context) (value.Value, Control, error) {
	gt, err := value.Greater(ctx.Inputs[0], ctx.Inputs[1])
	return value.BoolVal(gt), Done, err
}

func primAnd(p *Process, ctx *Context) (value.Value, Control, error) {
	a, err := value.ToBool(ctx.Inputs[0])
	if err != nil {
		return nil, Done, err
	}
	b, err := value.ToBool(ctx.Inputs[1])
	if err != nil {
		return nil, Done, err
	}
	return value.BoolVal(bool(a && b)), Done, nil
}

func primOr(p *Process, ctx *Context) (value.Value, Control, error) {
	a, err := value.ToBool(ctx.Inputs[0])
	if err != nil {
		return nil, Done, err
	}
	b, err := value.ToBool(ctx.Inputs[1])
	if err != nil {
		return nil, Done, err
	}
	return value.BoolVal(bool(a || b)), Done, nil
}

func primNot(p *Process, ctx *Context) (value.Value, Control, error) {
	a, err := value.ToBool(ctx.Inputs[0])
	if err != nil {
		return nil, Done, err
	}
	return value.BoolVal(bool(!a)), Done, nil
}

// primReportIfElse is the reporter-shaped conditional ("if _ then _ else
// _"): Snap!'s hexagonal reporter that picks one of two values. Like every
// reporter input slot in this interpreter, both branches are evaluated
// before the block applies (no short-circuit), the same eager semantics as
// reportAnd/reportOr.
func primReportIfElse(p *Process, ctx *Context) (value.Value, Control, error) {
	cond, err := value.ToBool(ctx.Inputs[0])
	if err != nil {
		return nil, Done, err
	}
	if cond {
		return ctx.Inputs[1], Done, nil
	}
	return ctx.Inputs[2], Done, nil
}

func primJoin(p *Process, ctx *Context) (value.Value, Control, error) {
	total := 0
	for _, v := range ctx.Inputs {
		total += len(v.String())
	}
	if err := checkTextLen(total); err != nil {
		return nil, Done, err
	}
	var b strings.Builder
	for _, v := range ctx.Inputs {
		b.WriteString(v.String())
	}
	return value.Text(b.String()), Done, nil
}

func primLetter(p *Process, ctx *Context) (value.Value, Control, error) {
	i, err := value.ToInt(ctx.Inputs[0])
	if err != nil {
		return nil, Done, err
	}
	s := []rune(ctx.Inputs[1].String())
	if i < 1 || i > len(s) {
		return value.Str(""), Done, nil
	}
	return value.Str(string(s[i-1])), Done, nil
}

func primStringSize(p *Process, ctx *Context) (value.Value, Control, error) {
	return value.NumInt(len([]rune(ctx.Inputs[0].String()))), Done, nil
}

func primTextSplit(p *Process, ctx *Context) (value.Value, Control, error) {
	text := ctx.Inputs[0].String()
	delim := ctx.Inputs[1].String()
	var parts []string
	switch delim {
	case "whitespace", " ":
		parts = strings.Fields(text)
	case "":
		for _, r := range text {
			parts = append(parts, string(r))
		}
	case "line":
		parts = strings.Split(text, "\n")
	default:
		parts = strings.Split(text, delim)
	}
	if err := checkListLen(len(parts)); err != nil {
		return nil, Done, err
	}
	return value.FromStrings(parts), Done, nil
}
