package interp

import (
	"strings"
	"testing"

	"repro/internal/blocks"
	"repro/internal/value"
)

func newTestMachine() *Machine {
	return NewMachine(blocks.NewProject("test"), nil)
}

// evalR evaluates one reporter block to a value, failing the test on error.
func evalR(t *testing.T, b *blocks.Block) value.Value {
	t.Helper()
	m := newTestMachine()
	v, err := m.EvalReporter(b)
	if err != nil {
		t.Fatalf("eval %s: %v", b.Describe(), err)
	}
	return v
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		b    *blocks.Block
		want string
	}{
		{blocks.Sum(blocks.Num(2), blocks.Num(3)), "5"},
		{blocks.Difference(blocks.Num(2), blocks.Num(3)), "-1"},
		{blocks.Product(blocks.Num(6), blocks.Num(7)), "42"},
		{blocks.Quotient(blocks.Num(7), blocks.Num(2)), "3.5"},
		{blocks.Modulus(blocks.Num(7), blocks.Num(3)), "1"},
		{blocks.Modulus(blocks.Num(-7), blocks.Num(3)), "2"}, // divisor-sign mod
		{blocks.Round(blocks.Num(2.5)), "3"},
		{blocks.Monadic("sqrt", blocks.Num(49)), "7"},
		{blocks.Monadic("abs", blocks.Num(-3)), "3"},
		{blocks.Monadic("floor", blocks.Num(2.9)), "2"},
		{blocks.Monadic("ceiling", blocks.Num(2.1)), "3"},
		{blocks.Monadic("sin", blocks.Num(90)), "1"},
		{blocks.Monadic("10^", blocks.Num(2)), "100"},
		{blocks.Sum(blocks.Txt("3"), blocks.Num(4)), "7"}, // text coercion
	}
	for _, c := range cases {
		if got := evalR(t, c.b).String(); got != c.want {
			t.Errorf("%s = %s, want %s", c.b.Describe(), got, c.want)
		}
	}
}

func TestArithmeticErrors(t *testing.T) {
	m := newTestMachine()
	for _, b := range []*blocks.Block{
		blocks.Quotient(blocks.Num(1), blocks.Num(0)),
		blocks.Modulus(blocks.Num(1), blocks.Num(0)),
		blocks.Monadic("sqrt", blocks.Num(-1)),
		blocks.Monadic("zorp", blocks.Num(1)),
		blocks.Sum(blocks.Txt("pear"), blocks.Num(1)),
	} {
		if _, err := m.EvalReporter(b); err == nil {
			t.Errorf("%s should error", b.Describe())
		}
		m = newTestMachine()
	}
}

func TestPredicatesAndLogic(t *testing.T) {
	cases := []struct {
		b    *blocks.Block
		want string
	}{
		{blocks.LessThan(blocks.Num(2), blocks.Num(3)), "true"},
		{blocks.GreaterThan(blocks.Num(2), blocks.Num(3)), "false"},
		{blocks.Equals(blocks.Txt("3"), blocks.Num(3)), "true"},
		{blocks.Equals(blocks.Txt("Cat"), blocks.Txt("cat")), "true"},
		{blocks.And(blocks.BoolLit(true), blocks.BoolLit(false)), "false"},
		{blocks.Or(blocks.BoolLit(true), blocks.BoolLit(false)), "true"},
		{blocks.Not(blocks.BoolLit(false)), "true"},
	}
	for _, c := range cases {
		if got := evalR(t, c.b).String(); got != c.want {
			t.Errorf("%s = %s, want %s", c.b.Describe(), got, c.want)
		}
	}
}

func TestTextBlocks(t *testing.T) {
	if got := evalR(t, blocks.Join(blocks.Txt("hello "), blocks.Txt("world"))).String(); got != "hello world" {
		t.Errorf("join = %q", got)
	}
	if got := evalR(t, blocks.Letter(blocks.Num(2), blocks.Txt("cat"))).String(); got != "a" {
		t.Errorf("letter = %q", got)
	}
	if got := evalR(t, blocks.Letter(blocks.Num(9), blocks.Txt("cat"))).String(); got != "" {
		t.Errorf("letter out of range = %q", got)
	}
	if got := evalR(t, blocks.StringSize(blocks.Txt("héllo"))).String(); got != "5" {
		t.Errorf("string size = %q (should count runes)", got)
	}
	if got := evalR(t, blocks.Split(blocks.Txt("a b  c"), blocks.Txt(" "))).String(); got != "[a b c]" {
		t.Errorf("split = %q", got)
	}
	if got := evalR(t, blocks.Split(blocks.Txt("ab"), blocks.Txt(""))).String(); got != "[a b]" {
		t.Errorf("split letters = %q", got)
	}
	if got := evalR(t, blocks.Split(blocks.Txt("a\nb"), blocks.Txt("line"))).String(); got != "[a b]" {
		t.Errorf("split lines = %q", got)
	}
	if got := evalR(t, blocks.Split(blocks.Txt("a,b"), blocks.Txt(","))).String(); got != "[a b]" {
		t.Errorf("split comma = %q", got)
	}
}

func TestListBlocks(t *testing.T) {
	lst := blocks.ListOf(blocks.Num(3), blocks.Num(7), blocks.Num(8))
	if got := evalR(t, lst).String(); got != "[3 7 8]" {
		t.Errorf("list = %s", got)
	}
	if got := evalR(t, blocks.ItemOf(blocks.Num(2), lst)).String(); got != "7" {
		t.Errorf("item = %s", got)
	}
	if got := evalR(t, blocks.LengthOf(lst)).String(); got != "3" {
		t.Errorf("length = %s", got)
	}
	if got := evalR(t, blocks.ListContains(lst, blocks.Num(7))).String(); got != "true" {
		t.Errorf("contains = %s", got)
	}
	if got := evalR(t, blocks.Numbers(blocks.Num(1), blocks.Num(5))).String(); got != "[1 2 3 4 5]" {
		t.Errorf("numbers = %s", got)
	}
	if got := evalR(t, blocks.Numbers(blocks.Num(3), blocks.Num(1))).String(); got != "[3 2 1]" {
		t.Errorf("numbers down = %s", got)
	}
}

func TestListMutationBlocks(t *testing.T) {
	m := newTestMachine()
	m.Project.Globals["L"] = value.NewList()
	m.globalFrame.Declare("L", value.NewList())
	script := blocks.NewScript(
		blocks.AddToList(blocks.Num(1), blocks.Var("L")),
		blocks.AddToList(blocks.Num(3), blocks.Var("L")),
		blocks.InsertInList(blocks.Num(2), blocks.Num(2), blocks.Var("L")),
		blocks.ReplaceInList(blocks.Num(3), blocks.Var("L"), blocks.Num(9)),
		blocks.DeleteFromList(blocks.Num(1), blocks.Var("L")),
		blocks.Report(blocks.Var("L")),
	)
	v, err := m.RunScript(script)
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "[2 9]" {
		t.Errorf("list after mutations = %s, want [2 9]", v)
	}
}

func TestVariablesAndScopes(t *testing.T) {
	m := newTestMachine()
	script := blocks.NewScript(
		blocks.DeclareLocal("x"),
		blocks.SetVar("x", blocks.Num(10)),
		blocks.ChangeVar("x", blocks.Num(5)),
		blocks.Report(blocks.Var("x")),
	)
	v, err := m.RunScript(script)
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "15" {
		t.Errorf("x = %s, want 15", v)
	}
}

func TestUndeclaredVariableErrors(t *testing.T) {
	m := newTestMachine()
	if _, err := m.RunScript(blocks.NewScript(blocks.SetVar("ghost", blocks.Num(1)))); err == nil {
		t.Error("setting an undeclared variable should error")
	}
	m = newTestMachine()
	if _, err := m.RunScript(blocks.NewScript(blocks.Report(blocks.Var("ghost")))); err == nil {
		t.Error("reading an undeclared variable should error")
	}
}

func TestIfElse(t *testing.T) {
	m := newTestMachine()
	script := blocks.NewScript(
		blocks.DeclareLocal("r"),
		blocks.IfElse(blocks.LessThan(blocks.Num(1), blocks.Num(2)),
			blocks.Body(blocks.SetVar("r", blocks.Txt("then"))),
			blocks.Body(blocks.SetVar("r", blocks.Txt("else")))),
		blocks.If(blocks.BoolLit(false),
			blocks.Body(blocks.SetVar("r", blocks.Txt("clobbered")))),
		blocks.Report(blocks.Var("r")),
	)
	v, err := m.RunScript(script)
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "then" {
		t.Errorf("r = %s", v)
	}
}

func TestRepeatAndUntilAndFor(t *testing.T) {
	m := newTestMachine()
	script := blocks.NewScript(
		blocks.DeclareLocal("n"),
		blocks.SetVar("n", blocks.Num(0)),
		blocks.Repeat(blocks.Num(5), blocks.Body(blocks.ChangeVar("n", blocks.Num(1)))),
		blocks.Until(blocks.GreaterThan(blocks.Var("n"), blocks.Num(7)),
			blocks.Body(blocks.ChangeVar("n", blocks.Num(1)))),
		blocks.Report(blocks.Var("n")),
	)
	v, err := m.RunScript(script)
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "8" {
		t.Errorf("n = %s, want 8 (5 from repeat, until passes 7)", v)
	}

	m = newTestMachine()
	script = blocks.NewScript(
		blocks.DeclareLocal("sum"),
		blocks.SetVar("sum", blocks.Num(0)),
		blocks.For("i", blocks.Num(1), blocks.Num(10),
			blocks.Body(blocks.ChangeVar("sum", blocks.Var("i")))),
		blocks.Report(blocks.Var("sum")),
	)
	v, err = m.RunScript(script)
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "55" {
		t.Errorf("sum 1..10 = %s, want 55", v)
	}

	// Downward for loop.
	m = newTestMachine()
	script = blocks.NewScript(
		blocks.DeclareLocal("out"),
		blocks.SetVar("out", blocks.Txt("")),
		blocks.For("i", blocks.Num(3), blocks.Num(1),
			blocks.Body(blocks.SetVar("out", blocks.Reporter(blocks.Join(blocks.Var("out"), blocks.Var("i")))))),
		blocks.Report(blocks.Var("out")),
	)
	v, err = m.RunScript(script)
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "321" {
		t.Errorf("countdown = %s, want 321", v)
	}
}

func TestRepeatZeroAndNegative(t *testing.T) {
	m := newTestMachine()
	script := blocks.NewScript(
		blocks.DeclareLocal("n"),
		blocks.SetVar("n", blocks.Num(0)),
		blocks.Repeat(blocks.Num(0), blocks.Body(blocks.ChangeVar("n", blocks.Num(1)))),
		blocks.Repeat(blocks.Num(-3), blocks.Body(blocks.ChangeVar("n", blocks.Num(1)))),
		blocks.Report(blocks.Var("n")),
	)
	v, err := m.RunScript(script)
	if err != nil || v.String() != "0" {
		t.Errorf("repeat 0/-3 ran the body: n = %v, err %v", v, err)
	}
}

func TestForeverAndStop(t *testing.T) {
	m := newTestMachine()
	script := blocks.NewScript(
		blocks.DeclareLocal("n"),
		blocks.SetVar("n", blocks.Num(0)),
		blocks.Forever(blocks.Body(
			blocks.ChangeVar("n", blocks.Num(1)),
			blocks.If(blocks.GreaterThan(blocks.Var("n"), blocks.Num(9)),
				blocks.Body(blocks.Stop())),
		)),
	)
	if _, err := m.RunScript(script); err != nil {
		t.Fatal(err)
	}
	v, err := m.GlobalFrame().Get("__missing__")
	_ = v
	if err == nil {
		t.Error("sanity: missing global should error")
	}
}

func TestWarpRunsAtomically(t *testing.T) {
	// Two processes increment a shared global; the warped one must
	// finish its loop without interleaving.
	m := newTestMachine()
	m.GlobalFrame().Declare("log", value.NewList())
	spA := blocks.NewSprite("A")
	spA.AddScript(blocks.HatGreenFlag, "", blocks.NewScript(
		blocks.Warp(blocks.Body(
			blocks.Repeat(blocks.Num(3), blocks.Body(
				blocks.AddToList(blocks.Txt("A"), blocks.Var("log")))))),
	))
	spB := blocks.NewSprite("B")
	spB.AddScript(blocks.HatGreenFlag, "", blocks.NewScript(
		blocks.Repeat(blocks.Num(3), blocks.Body(
			blocks.AddToList(blocks.Txt("B"), blocks.Var("log")))),
	))
	m2 := NewMachine(&blocks.Project{
		Name:    "warp",
		Globals: map[string]value.Value{},
		Sprites: []*blocks.Sprite{spA, spB},
	}, nil)
	m2.GlobalFrame().Declare("log", value.NewList())
	m2.GreenFlag()
	if err := m2.Run(0); err != nil {
		t.Fatal(err)
	}
	logv, _ := m2.GlobalFrame().Get("log")
	s := logv.String()
	if !strings.HasPrefix(s, "[A A A") {
		t.Errorf("warped script should run atomically, log = %s", s)
	}
	_ = m
}

func TestRingsAndCall(t *testing.T) {
	// call (ring (× _ 10)) with 7 → 70 (implicit empty-slot binding).
	v := evalR(t, blocks.Call(blocks.RingOf(blocks.Product(blocks.Empty(), blocks.Num(10))), blocks.Num(7)))
	if v.String() != "70" {
		t.Errorf("call ring = %s, want 70", v)
	}
	// Named parameters.
	v = evalR(t, blocks.Call(
		blocks.RingOf(blocks.Sum(blocks.Var("a"), blocks.Var("b")), "a", "b"),
		blocks.Num(3), blocks.Num(4)))
	if v.String() != "7" {
		t.Errorf("named-param ring = %s, want 7", v)
	}
	// A single argument fills every empty slot: (_ × _) squares.
	v = evalR(t, blocks.Call(blocks.RingOf(blocks.Product(blocks.Empty(), blocks.Empty())), blocks.Num(9)))
	if v.String() != "81" {
		t.Errorf("square via double empty slot = %s, want 81", v)
	}
	// Calling a plain datum evaluates to itself.
	v = evalR(t, blocks.Call(blocks.Num(5)))
	if v.String() != "5" {
		t.Errorf("call 5 = %s, want 5", v)
	}
}

func TestCommandRingAndReport(t *testing.T) {
	// run a command ring that reports via doReport from inside.
	m := newTestMachine()
	script := blocks.NewScript(
		blocks.DeclareLocal("r"),
		blocks.SetVar("r", blocks.Reporter(blocks.Call(
			blocks.RingScript(blocks.NewScript(
				blocks.Report(blocks.Sum(blocks.Num(20), blocks.Num(22))),
			))))),
		blocks.Report(blocks.Var("r")),
	)
	v, err := m.RunScript(script)
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "42" {
		t.Errorf("command-ring report = %s, want 42", v)
	}
}

func TestRingsAreLexicalClosures(t *testing.T) {
	// A ring captures its defining scope: make an adder.
	m := newTestMachine()
	script := blocks.NewScript(
		blocks.DeclareLocal("k", "f"),
		blocks.SetVar("k", blocks.Num(100)),
		blocks.SetVar("f", blocks.RingOf(blocks.Sum(blocks.Var("k"), blocks.Empty()))),
		blocks.SetVar("k", blocks.Num(5)), // rebinding is visible (shared frame)
		blocks.Report(blocks.Call(blocks.Var("f"), blocks.Num(1))),
	)
	v, err := m.RunScript(script)
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "6" {
		t.Errorf("closure = %s, want 6", v)
	}
}

func TestSequentialMapFigure4(t *testing.T) {
	// Figure 4: map (× _ 10) over (3 7 8) → (30 70 80).
	v := evalR(t, blocks.Map(
		blocks.RingOf(blocks.Product(blocks.Empty(), blocks.Num(10))),
		blocks.ListOf(blocks.Num(3), blocks.Num(7), blocks.Num(8))))
	if v.String() != "[30 70 80]" {
		t.Errorf("Figure 4 map = %s, want [30 70 80]", v)
	}
}

func TestKeepAndCombine(t *testing.T) {
	v := evalR(t, blocks.Keep(
		blocks.RingOf(blocks.GreaterThan(blocks.Empty(), blocks.Num(2))),
		blocks.ListOf(blocks.Num(1), blocks.Num(2), blocks.Num(3), blocks.Num(4))))
	if v.String() != "[3 4]" {
		t.Errorf("keep = %s", v)
	}
	v = evalR(t, blocks.Combine(
		blocks.Numbers(blocks.Num(1), blocks.Num(100)),
		blocks.RingOf(blocks.Sum(blocks.Empty(), blocks.Empty()))))
	// Two empty slots with two args bind positionally.
	if v.String() != "5050" {
		t.Errorf("combine sum 1..100 = %s, want 5050", v)
	}
	// Empty list combines to 0.
	v = evalR(t, blocks.Combine(blocks.ListOf(),
		blocks.RingOf(blocks.Sum(blocks.Empty(), blocks.Empty()))))
	if v.String() != "0" {
		t.Errorf("combine empty = %s", v)
	}
}

func TestForEachSequential(t *testing.T) {
	m := newTestMachine()
	m.GlobalFrame().Declare("acc", value.NewList())
	script := blocks.NewScript(
		blocks.ForEach("item", blocks.ListOf(blocks.Num(1), blocks.Num(2), blocks.Num(3)),
			blocks.Body(blocks.AddToList(blocks.Product(blocks.Var("item"), blocks.Num(2)), blocks.Var("acc")))),
		blocks.Report(blocks.Var("acc")),
	)
	v, err := m.RunScript(script)
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "[2 4 6]" {
		t.Errorf("forEach acc = %s", v)
	}
}

func TestCustomBlocks(t *testing.T) {
	p := blocks.NewProject("byob")
	p.Customs["double"] = &blocks.CustomBlock{
		Name: "double", Params: []string{"n"}, IsReporter: true,
		Body: blocks.NewScript(blocks.Report(blocks.Sum(blocks.Var("n"), blocks.Var("n")))),
	}
	// Recursive custom block: factorial.
	p.Customs["fact"] = &blocks.CustomBlock{
		Name: "fact", Params: []string{"n"}, IsReporter: true,
		Body: blocks.NewScript(
			blocks.IfElse(blocks.LessThan(blocks.Var("n"), blocks.Num(2)),
				blocks.Body(blocks.Report(blocks.Num(1))),
				blocks.Body(blocks.Report(blocks.Product(blocks.Var("n"),
					blocks.Reporter(blocks.CallCustom("fact", blocks.Difference(blocks.Var("n"), blocks.Num(1))))))))),
	}
	m := NewMachine(p, nil)
	v, err := m.EvalReporter(blocks.CallCustom("double", blocks.Num(21)))
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "42" {
		t.Errorf("double(21) = %s", v)
	}
	m = NewMachine(p, nil)
	v, err = m.EvalReporter(blocks.CallCustom("fact", blocks.Num(10)))
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "3628800" {
		t.Errorf("fact(10) = %s, want 3628800", v)
	}
	m = NewMachine(p, nil)
	if _, err := m.EvalReporter(blocks.CallCustom("nope")); err == nil {
		t.Error("undefined custom block should error")
	}
}

func TestMissingPrimitive(t *testing.T) {
	m := newTestMachine()
	if _, err := m.RunScript(blocks.NewScript(blocks.NewBlock("flyToTheMoon"))); err == nil {
		t.Error("unknown opcode should error")
	}
	if HasPrimitive("flyToTheMoon") {
		t.Error("HasPrimitive lies")
	}
	if !HasPrimitive("reportSum") {
		t.Error("reportSum should exist")
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration should panic")
		}
	}()
	RegisterPrimitive("reportSum", primEquals)
}

func TestCallFunctionDetached(t *testing.T) {
	// CallFunction is the worker-side evaluator: pure math works...
	ring := &blocks.Ring{Body: blocks.Product(blocks.Empty(), blocks.Num(10))}
	v, err := CallFunction(ring, []value.Value{value.Number(7)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "70" {
		t.Errorf("detached call = %s", v)
	}
	// ...command rings with doReport work...
	ring = &blocks.Ring{Body: blocks.NewScript(
		blocks.Report(blocks.Sum(blocks.Empty(), blocks.Num(1))),
	)}
	v, err = CallFunction(ring, []value.Value{value.Number(41)}, 0)
	if err != nil || v.String() != "42" {
		t.Fatalf("detached command ring = %v, %v", v, err)
	}
	// ...but stage access fails like DOM access in a real worker...
	ring = &blocks.Ring{Body: blocks.NewScript(blocks.Say(blocks.Txt("hi")))}
	if _, err := CallFunction(ring, nil, 0); err == nil {
		t.Error("stage block inside worker should error")
	}
	// ...and infinite loops hit the budget.
	ring = &blocks.Ring{Body: blocks.NewScript(blocks.Forever(blocks.Body()))}
	if _, err := CallFunction(ring, nil, 2000); err == nil {
		t.Error("runaway function should hit the eval budget")
	}
}

func TestCallFunctionClonesArgs(t *testing.T) {
	// The worker boundary must clone: mutating the argument inside the
	// function must not affect the caller's list.
	l := value.NewList(value.Number(1))
	ring := &blocks.Ring{
		Params: []string{"L"},
		Body: blocks.NewScript(
			blocks.AddToList(blocks.Num(2), blocks.Var("L")),
			blocks.Report(blocks.Var("L")),
		),
	}
	v, err := CallFunction(ring, []value.Value{l}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "[1 2]" {
		t.Errorf("worker result = %s", v)
	}
	if l.Len() != 1 {
		t.Error("worker mutated the caller's list: missing structured clone")
	}
}

func TestGreenFlagAndKeyEvents(t *testing.T) {
	// The dragon project of Figure 3: green flag moves, arrow keys turn.
	p := blocks.NewProject("dragon")
	dragon := p.AddSprite(blocks.NewSprite("Dragon"))
	dragon.AddScript(blocks.HatGreenFlag, "", blocks.NewScript(
		blocks.Repeat(blocks.Num(3), blocks.Body(blocks.Forward(blocks.Num(10)))),
	))
	dragon.AddScript(blocks.HatKeyPress, "right arrow", blocks.NewScript(
		blocks.TurnRight(blocks.Num(15)),
	))
	dragon.AddScript(blocks.HatKeyPress, "left arrow", blocks.NewScript(
		blocks.TurnLeft(blocks.Num(15)),
	))
	m := NewMachine(p, nil)
	if n := len(m.GreenFlag()); n != 1 {
		t.Fatalf("green flag started %d scripts", n)
	}
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	a := m.Stage.Actor("Dragon")
	if a.X != 30 {
		t.Errorf("dragon x = %g, want 30", a.X)
	}
	m.PressKey("right arrow")
	m.Run(0)
	if a.Heading != 105 {
		t.Errorf("heading = %g, want 105", a.Heading)
	}
	m.PressKey("left arrow")
	m.PressKey("left arrow")
	m.Run(0)
	if a.Heading != 75 {
		t.Errorf("heading = %g, want 75", a.Heading)
	}
	if len(m.PressKey("space")) != 0 {
		t.Error("unbound key should start nothing")
	}
}

func TestBroadcastAndWait(t *testing.T) {
	p := blocks.NewProject("bw")
	a := p.AddSprite(blocks.NewSprite("A"))
	b := p.AddSprite(blocks.NewSprite("B"))
	p.Globals["log"] = value.NewList()
	a.AddScript(blocks.HatGreenFlag, "", blocks.NewScript(
		blocks.BroadcastAndWait(blocks.Txt("go")),
		blocks.AddToList(blocks.Txt("after"), blocks.Var("log")),
	))
	b.AddScript(blocks.HatBroadcast, "go", blocks.NewScript(
		blocks.Wait(blocks.Num(2)),
		blocks.AddToList(blocks.Txt("handler"), blocks.Var("log")),
	))
	m := NewMachine(p, nil)
	m.GreenFlag()
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	logv, _ := m.GlobalFrame().Get("log")
	if logv.String() != "[handler after]" {
		t.Errorf("broadcast-and-wait order = %s, want [handler after]", logv)
	}
}

func TestPlainBroadcastDoesNotWait(t *testing.T) {
	p := blocks.NewProject("b")
	a := p.AddSprite(blocks.NewSprite("A"))
	b := p.AddSprite(blocks.NewSprite("B"))
	p.Globals["log"] = value.NewList()
	a.AddScript(blocks.HatGreenFlag, "", blocks.NewScript(
		blocks.Broadcast(blocks.Txt("go")),
		blocks.AddToList(blocks.Txt("after"), blocks.Var("log")),
	))
	b.AddScript(blocks.HatBroadcast, "go", blocks.NewScript(
		blocks.Wait(blocks.Num(2)),
		blocks.AddToList(blocks.Txt("handler"), blocks.Var("log")),
	))
	m := NewMachine(p, nil)
	m.GreenFlag()
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	logv, _ := m.GlobalFrame().Get("log")
	if logv.String() != "[after handler]" {
		t.Errorf("broadcast order = %s, want [after handler]", logv)
	}
}

func TestClones(t *testing.T) {
	p := blocks.NewProject("clones")
	sp := p.AddSprite(blocks.NewSprite("Pitcher"))
	p.Globals["count"] = value.Number(0)
	sp.AddScript(blocks.HatGreenFlag, "", blocks.NewScript(
		blocks.Repeat(blocks.Num(3), blocks.Body(
			blocks.CreateCloneOf(blocks.Txt("myself")))),
	))
	sp.AddScript(blocks.HatCloneStart, "", blocks.NewScript(
		blocks.ChangeVar("count", blocks.Num(1)),
		blocks.DeleteThisClone(),
	))
	m := NewMachine(p, nil)
	m.GreenFlag()
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	count, _ := m.GlobalFrame().Get("count")
	if count.String() != "3" {
		t.Errorf("clone count = %s, want 3", count)
	}
	if m.Stage.CloneCount("Pitcher") != 0 {
		t.Error("all clones should have deleted themselves")
	}
}

func TestTimerAndWait(t *testing.T) {
	p := blocks.NewProject("t")
	sp := p.AddSprite(blocks.NewSprite("S"))
	sp.AddScript(blocks.HatGreenFlag, "", blocks.NewScript(
		blocks.ResetTimer(),
		blocks.Wait(blocks.Num(5)),
		blocks.Say(blocks.Timer()),
	))
	m := NewMachine(p, nil)
	m.GreenFlag()
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := m.Stage.Actor("S").Saying; got != "5" {
		t.Errorf("timer after wait 5 = %s", got)
	}
}

// TestDragonInterleaving is experiment E13: three concurrent scripts of one
// sprite interleave under the round-robin time-sliced scheduler — the
// "illusion of parallel execution" of §2.
func TestDragonInterleaving(t *testing.T) {
	p := blocks.NewProject("dragon")
	p.Globals["log"] = value.NewList()
	sp := p.AddSprite(blocks.NewSprite("Dragon"))
	for _, tag := range []string{"a", "b", "c"} {
		sp.AddScript(blocks.HatGreenFlag, "", blocks.NewScript(
			blocks.Repeat(blocks.Num(3), blocks.Body(
				blocks.AddToList(blocks.Txt(tag), blocks.Var("log")))),
		))
	}
	m := NewMachine(p, nil)
	m.GreenFlag()
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	logv, _ := m.GlobalFrame().Get("log")
	if logv.String() != "[a b c a b c a b c]" {
		t.Errorf("interleaving = %s, want round-robin [a b c a b c a b c]", logv)
	}
}

func TestRoundLimit(t *testing.T) {
	p := blocks.NewProject("spin")
	sp := p.AddSprite(blocks.NewSprite("S"))
	sp.AddScript(blocks.HatGreenFlag, "", blocks.NewScript(
		blocks.Forever(blocks.Body(blocks.Forward(blocks.Num(1)))),
	))
	m := NewMachine(p, nil)
	m.GreenFlag()
	err := m.Run(10)
	if err == nil || !strings.Contains(err.Error(), "round limit") {
		t.Errorf("expected round-limit error, got %v", err)
	}
	m.StopAll()
	if m.Step() {
		t.Error("after StopAll no processes should remain")
	}
}

func TestProcessErrorsSurface(t *testing.T) {
	p := blocks.NewProject("err")
	sp := p.AddSprite(blocks.NewSprite("S"))
	sp.AddScript(blocks.HatGreenFlag, "", blocks.NewScript(
		blocks.Say(blocks.Quotient(blocks.Num(1), blocks.Num(0))),
	))
	m := NewMachine(p, nil)
	m.GreenFlag()
	err := m.Run(0)
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("err = %v", err)
	}
	if len(m.Errors()) != 1 {
		t.Errorf("errors = %v", m.Errors())
	}
}

func TestOnDoneFires(t *testing.T) {
	m := newTestMachine()
	sp := blocks.NewSprite("S")
	fired := false
	proc := m.SpawnScript(sp, nil, blocks.NewScript())
	proc.OnDone = func(*Process) { fired = true }
	m.Run(0)
	if !fired {
		t.Error("OnDone should fire when the process completes")
	}
}

func TestRandomBlockDeterministic(t *testing.T) {
	m := newTestMachine()
	m.SeedRand(7)
	v1, err := m.EvalReporter(blocks.Random(blocks.Num(1), blocks.Num(1000)))
	if err != nil {
		t.Fatal(err)
	}
	m2 := newTestMachine()
	m2.SeedRand(7)
	v2, _ := m2.EvalReporter(blocks.Random(blocks.Num(1), blocks.Num(1000)))
	if v1.String() != v2.String() {
		t.Error("seeded random must be reproducible")
	}
	n, _ := value.ToNumber(v1)
	if n < 1 || n > 1000 {
		t.Errorf("random out of range: %v", n)
	}
	// Reversed bounds and float bounds.
	v3, err := m.EvalReporter(blocks.Random(blocks.Num(10), blocks.Num(1)))
	if err != nil {
		t.Fatal(err)
	}
	n3, _ := value.ToNumber(v3)
	if n3 < 1 || n3 > 10 {
		t.Errorf("reversed random out of range: %v", n3)
	}
	v4, err := m.EvalReporter(blocks.Random(blocks.Num(0), blocks.Num(0.5)))
	if err != nil {
		t.Fatal(err)
	}
	n4, _ := value.ToNumber(v4)
	if n4 < 0 || n4 > 0.5 {
		t.Errorf("float random out of range: %v", n4)
	}
}
