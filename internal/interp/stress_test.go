package interp

import (
	"fmt"
	"testing"

	"repro/internal/blocks"
	"repro/internal/value"
)

// Stress tests: the shapes that break naive interpreters — deep context
// stacks, wide sprite populations, long-running loops — must stay correct.

func TestDeepRecursion(t *testing.T) {
	// A custom block recursing 5000 deep: contexts are heap-allocated
	// links, so this must not blow any stack.
	p := blocks.NewProject("deep")
	p.Customs["countdown"] = &blocks.CustomBlock{
		Name: "countdown", Params: []string{"n"}, IsReporter: true,
		Body: blocks.NewScript(
			blocks.IfElse(blocks.LessThan(blocks.Var("n"), blocks.Num(1)),
				blocks.Body(blocks.Report(blocks.Num(0))),
				blocks.Body(blocks.Report(blocks.Sum(blocks.Num(1),
					blocks.Reporter(blocks.CallCustom("countdown",
						blocks.Difference(blocks.Var("n"), blocks.Num(1))))))))),
	}
	m := NewMachine(p, nil)
	v, err := m.EvalReporter(blocks.CallCustom("countdown", blocks.Num(5000)))
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "5000" {
		t.Errorf("countdown depth = %s", v)
	}
}

func TestDeeplyNestedExpressions(t *testing.T) {
	// 2000-deep nested sums: ((((1)+1)+1)...).
	var node blocks.Node = blocks.Num(0)
	for i := 0; i < 2000; i++ {
		node = blocks.Reporter(blocks.Sum(node, blocks.Num(1)))
	}
	m := newTestMachine()
	v, err := m.RunScript(blocks.NewScript(blocks.Report(node)))
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "2000" {
		t.Errorf("nested sum = %s", v)
	}
}

func TestManySprites(t *testing.T) {
	// 200 sprites each running a green-flag script; all must finish and
	// the shared counter must see every increment (single-threaded
	// concurrency: no lost updates, ever).
	p := blocks.NewProject("crowd")
	p.Globals["n"] = value.Number(0)
	const sprites = 200
	for i := 0; i < sprites; i++ {
		sp := p.AddSprite(blocks.NewSprite(fmt.Sprintf("S%03d", i)))
		sp.AddScript(blocks.HatGreenFlag, "", blocks.NewScript(
			blocks.Repeat(blocks.Num(10), blocks.Body(
				blocks.ChangeVar("n", blocks.Num(1)))),
		))
	}
	m := NewMachine(p, nil)
	m.GreenFlag()
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	n, _ := m.GlobalFrame().Get("n")
	if n.String() != "2000" {
		t.Errorf("n = %s, want 2000", n)
	}
	if len(m.Stage.Actors()) != sprites {
		t.Errorf("actors = %d", len(m.Stage.Actors()))
	}
}

func TestLongLoopWithinBudget(t *testing.T) {
	// A 100k-iteration warped loop must finish (warp ignores yields;
	// the op budget only bounds each slice, not the total).
	m := newTestMachine()
	script := blocks.NewScript(
		blocks.DeclareLocal("n"),
		blocks.SetVar("n", blocks.Num(0)),
		blocks.Warp(blocks.Body(
			blocks.Repeat(blocks.Num(100000), blocks.Body(
				blocks.ChangeVar("n", blocks.Num(1)))))),
		blocks.Report(blocks.Var("n")),
	)
	v, err := m.RunScript(script)
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "100000" {
		t.Errorf("n = %s", v)
	}
}

func TestBroadcastStorm(t *testing.T) {
	// Chained broadcasts: each handler re-broadcasts until a counter
	// hits zero. Exercises process spawning during scheduling rounds.
	p := blocks.NewProject("storm")
	p.Globals["hops"] = value.Number(50)
	sp := p.AddSprite(blocks.NewSprite("Relay"))
	sp.AddScript(blocks.HatBroadcast, "ping", blocks.NewScript(
		blocks.If(blocks.GreaterThan(blocks.Var("hops"), blocks.Num(0)), blocks.Body(
			blocks.ChangeVar("hops", blocks.Num(-1)),
			blocks.Broadcast(blocks.Txt("ping")),
		)),
	))
	m := NewMachine(p, nil)
	m.StartBroadcast("ping")
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	hops, _ := m.GlobalFrame().Get("hops")
	if hops.String() != "0" {
		t.Errorf("hops = %s, want 0", hops)
	}
}

func TestListHeavyWorkload(t *testing.T) {
	// Build a 5000-element list block-by-block, then fold it.
	m := newTestMachine()
	script := blocks.NewScript(
		blocks.DeclareLocal("xs"),
		blocks.SetVar("xs", blocks.ListOf()),
		blocks.Warp(blocks.Body(
			blocks.For("i", blocks.Num(1), blocks.Num(5000), blocks.Body(
				blocks.AddToList(blocks.Var("i"), blocks.Var("xs")))))),
		blocks.Report(blocks.Combine(blocks.Var("xs"),
			blocks.RingOf(blocks.Sum(blocks.Empty(), blocks.Empty())))),
	)
	v, err := m.RunScript(script)
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "12502500" {
		t.Errorf("sum 1..5000 = %s", v)
	}
}

func TestStopAllMidFlight(t *testing.T) {
	p := blocks.NewProject("halt")
	p.Globals["n"] = value.Number(0)
	for i := 0; i < 5; i++ {
		sp := p.AddSprite(blocks.NewSprite(fmt.Sprintf("S%d", i)))
		sp.AddScript(blocks.HatGreenFlag, "", blocks.NewScript(
			blocks.Forever(blocks.Body(blocks.ChangeVar("n", blocks.Num(1)))),
		))
	}
	m := NewMachine(p, nil)
	m.GreenFlag()
	for i := 0; i < 10; i++ {
		m.Step()
	}
	m.StopAll()
	if m.Step() {
		t.Error("machine should be empty after StopAll")
	}
	if len(m.Errors()) != 0 {
		t.Errorf("stop is not an error: %v", m.Errors())
	}
}
