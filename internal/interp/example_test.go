package interp_test

import (
	"fmt"

	"repro/internal/blocks"
	"repro/internal/interp"
	"repro/internal/value"
)

// Build Figure 4's map program with the block constructors and run it.
func ExampleMachine_EvalReporter() {
	m := interp.NewMachine(blocks.NewProject("example"), nil)
	v, err := m.EvalReporter(blocks.Map(
		blocks.RingOf(blocks.Product(blocks.Empty(), blocks.Num(10))),
		blocks.ListOf(blocks.Num(3), blocks.Num(7), blocks.Num(8)),
	))
	if err != nil {
		panic(err)
	}
	fmt.Println(v)
	// Output: [30 70 80]
}

// A script with variables, a loop, and a report.
func ExampleMachine_RunScript() {
	m := interp.NewMachine(blocks.NewProject("example"), nil)
	v, err := m.RunScript(blocks.NewScript(
		blocks.DeclareLocal("sum"),
		blocks.SetVar("sum", blocks.Num(0)),
		blocks.For("i", blocks.Num(1), blocks.Num(10), blocks.Body(
			blocks.ChangeVar("sum", blocks.Var("i")),
		)),
		blocks.Report(blocks.Var("sum")),
	))
	if err != nil {
		panic(err)
	}
	fmt.Println(v)
	// Output: 55
}

// Two scripts of one sprite interleave under the time-sliced scheduler —
// §2's cooperative concurrency.
func ExampleMachine_GreenFlag() {
	p := blocks.NewProject("dragon")
	p.Globals["log"] = value.NewList()
	sp := p.AddSprite(blocks.NewSprite("Dragon"))
	for _, tag := range []string{"a", "b"} {
		sp.AddScript(blocks.HatGreenFlag, "", blocks.NewScript(
			blocks.Repeat(blocks.Num(2), blocks.Body(
				blocks.AddToList(blocks.Txt(tag), blocks.Var("log")))),
		))
	}
	m := interp.NewMachine(p, nil)
	m.GreenFlag()
	if err := m.Run(0); err != nil {
		panic(err)
	}
	log, _ := m.GlobalFrame().Get("log")
	fmt.Println(log)
	// Output: [a b a b]
}
