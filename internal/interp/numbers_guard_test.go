package interp

import (
	"math"
	"testing"

	"repro/internal/blocks"
	"repro/internal/value"
)

// TestNumbersRejectsNonNumericText is the regression test for the OOM bug:
// `numbers from 1 to "Infinity"` used to parse "Infinity" to +Inf, convert
// the span to a negative int that sailed past the length cap, and allocate
// until the process died. ToNumber now rejects the non-finite spellings, so
// the block errors out before any allocation on every tier.
func TestNumbersRejectsNonNumericText(t *testing.T) {
	cases := []struct {
		name string
		b    *blocks.Block
		want string
	}{
		{"infinity", blocks.Numbers(blocks.Num(1), blocks.Txt("Infinity")),
			`reportNumbers: expecting a number but getting text "Infinity"`},
		{"neg-infinity", blocks.Numbers(blocks.Txt("-Infinity"), blocks.Num(1)),
			`reportNumbers: expecting a number but getting text "-Infinity"`},
		{"inf", blocks.Numbers(blocks.Num(1), blocks.Txt("inf")),
			`reportNumbers: expecting a number but getting text "inf"`},
		{"nan", blocks.Numbers(blocks.Num(1), blocks.Txt("NaN")),
			`reportNumbers: expecting a number but getting text "NaN"`},
		{"hex-float", blocks.Numbers(blocks.Num(1), blocks.Txt("0x1p30")),
			`reportNumbers: expecting a number but getting text "0x1p30"`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := newTestMachine()
			_, err := m.EvalReporter(c.b)
			if err == nil {
				t.Fatalf("%s should error", c.b.Describe())
			}
			if got := err.Error(); got != c.want {
				t.Fatalf("error = %q, want %q", got, c.want)
			}
		})
	}
}

// TestNumbersRejectsNonFiniteBounds covers the second hole: arithmetic can
// still produce a non-finite bound (1e308 * 10) even though text cannot.
func TestNumbersRejectsNonFiniteBounds(t *testing.T) {
	m := newTestMachine()
	b := blocks.Numbers(blocks.Num(1), blocks.Product(blocks.Num(1e308), blocks.Num(10)))
	_, err := m.EvalReporter(b)
	want := "reportNumbers: numbers from 1 to +Inf: bounds must be finite"
	if err == nil || err.Error() != want {
		t.Fatalf("error = %v, want %q", err, want)
	}
}

func TestCheckNumbersBounds(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		name     string
		from, to float64
		want     string // "" = ok
	}{
		{"ok", 1, 100, ""},
		{"ok-descending", 100, 1, ""},
		{"inf-to", 1, inf, "numbers from 1 to +Inf: bounds must be finite"},
		{"neg-inf-from", -inf, 1, "numbers from -Inf to 1: bounds must be finite"},
		{"nan-from", math.NaN(), 1, "numbers from NaN to 1: bounds must be finite"},
		{"huge-span", 1, 1e18, "list of 1e+18 elements exceeds the engine limit of 2147483648"},
		{"at-engine-limit", 1, float64(maxNumbersSpan) + 2,
			"list of 2147483650 elements exceeds the engine limit of 2147483648"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := CheckNumbersBounds(c.from, c.to)
			switch {
			case c.want == "" && err != nil:
				t.Fatalf("unexpected error: %v", err)
			case c.want != "" && (err == nil || err.Error() != c.want):
				t.Fatalf("error = %v, want %q", err, c.want)
			}
		})
	}
}

func TestCheckNumbersBoundsServiceCap(t *testing.T) {
	SetValueCaps(1000, 0)
	defer SetValueCaps(0, 0)
	err := CheckNumbersBounds(1, 5000)
	want := "list of 5000 elements exceeds the service cap of 1000"
	if err == nil || err.Error() != want {
		t.Fatalf("error = %v, want %q", err, want)
	}
	if err := CheckNumbersBounds(1, 1000); err != nil {
		t.Fatalf("in-cap span rejected: %v", err)
	}
}

// TestNumbersProducesColumnarList pins the tentpole behavior: the numbers
// reporter builds a columnar list, visible through the raw float view.
func TestNumbersProducesColumnarList(t *testing.T) {
	v := evalR(t, blocks.Numbers(blocks.Num(1), blocks.Num(100)))
	l, ok := v.(*value.List)
	if !ok {
		t.Fatalf("numbers returned %T", v)
	}
	if !l.Columnar() || l.Len() != 100 {
		t.Fatalf("columnar=%v len=%d", l.Columnar(), l.Len())
	}
	xs, ok := l.FloatsView()
	if !ok || xs[0] != 1 || xs[99] != 100 {
		t.Fatalf("FloatsView = %v, %v", xs[:2], ok)
	}
}
