package interp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/blocks"
	"repro/internal/value"
)

// This file cross-checks the interpreter against a direct Go evaluator on
// randomly generated programs — the strongest correctness evidence the
// evaluator gets: any divergence between "what the blocks compute" and
// "what the math says" fails the test with the offending program printed.

// genExpr builds a random arithmetic expression tree of bounded depth and
// the Go function computing the same value.
func genExpr(rng *rand.Rand, depth int) (blocks.Node, func() float64) {
	if depth <= 0 || rng.Intn(4) == 0 {
		n := float64(rng.Intn(21) - 10)
		return blocks.Num(n), func() float64 { return n }
	}
	switch rng.Intn(5) {
	case 0:
		a, fa := genExpr(rng, depth-1)
		b, fb := genExpr(rng, depth-1)
		return blocks.Reporter(blocks.Sum(a, b)), func() float64 { return fa() + fb() }
	case 1:
		a, fa := genExpr(rng, depth-1)
		b, fb := genExpr(rng, depth-1)
		return blocks.Reporter(blocks.Difference(a, b)), func() float64 { return fa() - fb() }
	case 2:
		a, fa := genExpr(rng, depth-1)
		b, fb := genExpr(rng, depth-1)
		return blocks.Reporter(blocks.Product(a, b)), func() float64 { return fa() * fb() }
	case 3:
		a, fa := genExpr(rng, depth-1)
		return blocks.Reporter(blocks.Monadic("abs", a)), func() float64 { return math.Abs(fa()) }
	default:
		a, fa := genExpr(rng, depth-1)
		return blocks.Reporter(blocks.Round(a)), func() float64 { return math.Round(fa()) }
	}
}

func TestDifferentialExpressions(t *testing.T) {
	rng := rand.New(rand.NewSource(20260706))
	for trial := 0; trial < 300; trial++ {
		node, direct := genExpr(rng, 5)
		want := direct()
		m := newTestMachine()
		got, err := m.RunScript(blocks.NewScript(blocks.Report(node)))
		if err != nil {
			t.Fatalf("trial %d: %s: %v", trial, node.Describe(), err)
		}
		n, err := value.ToNumber(got)
		if err != nil {
			t.Fatalf("trial %d: non-number %v", trial, got)
		}
		if float64(n) != want && !(math.IsNaN(want) && math.IsNaN(float64(n))) {
			t.Fatalf("trial %d: %s = %v, want %v", trial, node.Describe(), n, want)
		}
	}
}

// genProgram builds a random straight-line + loop program over variables
// a and b, alongside a Go mirror of its semantics.
func genProgram(rng *rand.Rand) (*blocks.Script, func() (float64, float64)) {
	type op struct {
		apply func(a, b float64) (float64, float64)
		block *blocks.Block
	}
	vars := []string{"a", "b"}
	pickVar := func() (string, int) {
		i := rng.Intn(2)
		return vars[i], i
	}
	var ops []op
	count := 3 + rng.Intn(6)
	for i := 0; i < count; i++ {
		switch rng.Intn(3) {
		case 0: // set v to k
			v, idx := pickVar()
			k := float64(rng.Intn(9) - 4)
			ops = append(ops, op{
				block: blocks.SetVar(v, blocks.Num(k)),
				apply: func(a, b float64) (float64, float64) {
					if idx == 0 {
						return k, b
					}
					return a, k
				},
			})
		case 1: // change v by k
			v, idx := pickVar()
			k := float64(rng.Intn(9) - 4)
			ops = append(ops, op{
				block: blocks.ChangeVar(v, blocks.Num(k)),
				apply: func(a, b float64) (float64, float64) {
					if idx == 0 {
						return a + k, b
					}
					return a, b + k
				},
			})
		default: // repeat n { change v by k }
			v, idx := pickVar()
			n := rng.Intn(5)
			k := float64(rng.Intn(5) - 2)
			ops = append(ops, op{
				block: blocks.Repeat(blocks.Num(float64(n)),
					blocks.Body(blocks.ChangeVar(v, blocks.Num(k)))),
				apply: func(a, b float64) (float64, float64) {
					if idx == 0 {
						return a + float64(n)*k, b
					}
					return a, b + float64(n)*k
				},
			})
		}
	}
	script := blocks.NewScript(
		blocks.DeclareLocal("a", "b"),
		blocks.SetVar("a", blocks.Num(0)),
		blocks.SetVar("b", blocks.Num(0)),
	)
	for _, o := range ops {
		script.Append(o.block)
	}
	script.Append(blocks.Report(blocks.Reporter(
		blocks.Join(blocks.Var("a"), blocks.Txt("|"), blocks.Var("b")))))
	mirror := func() (float64, float64) {
		a, b := 0.0, 0.0
		for _, o := range ops {
			a, b = o.apply(a, b)
		}
		return a, b
	}
	return script, mirror
}

func TestDifferentialPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		script, mirror := genProgram(rng)
		a, b := mirror()
		want := value.Number(a).String() + "|" + value.Number(b).String()
		m := newTestMachine()
		got, err := m.RunScript(script)
		if err != nil {
			t.Fatalf("trial %d: %s: %v", trial, script.Describe(), err)
		}
		if got.String() != want {
			t.Fatalf("trial %d:\nprogram: %s\ngot %q want %q",
				trial, script.Describe(), got.String(), want)
		}
	}
}
