package interp

import (
	"strings"
	"testing"

	"repro/internal/blocks"
	"repro/internal/value"
)

// Gap-filling tests for paths the main suites reach only via other
// packages.

func TestDoRunCommandRing(t *testing.T) {
	m := newTestMachine()
	m.GlobalFrame().Declare("log", value.NewList())
	script := blocks.NewScript(
		blocks.Run(blocks.RingScript(blocks.NewScript(
			blocks.AddToList(blocks.Empty(), blocks.Var("log")),
		)), blocks.Num(7)),
		blocks.Report(blocks.Var("log")),
	)
	v, err := m.RunScript(script)
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "[7]" {
		t.Errorf("run ring log = %s", v)
	}
	// Running a non-ring errors.
	m = newTestMachine()
	if _, err := m.RunScript(blocks.NewScript(blocks.Run(blocks.Num(5)))); err == nil {
		t.Error("run 5 should error")
	}
}

func TestMotionAndLooksBlocks(t *testing.T) {
	p := blocks.NewProject("motion")
	sp := p.AddSprite(blocks.NewSprite("S"))
	sp.AddScript(blocks.HatGreenFlag, "", blocks.NewScript(
		blocks.GotoXY(blocks.Num(10), blocks.Num(-20)),
		blocks.Think(blocks.Txt("hmm")),
		blocks.Say(blocks.MyName()),
	))
	m := NewMachine(p, nil)
	m.GreenFlag()
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	a := m.Stage.Actor("S")
	if a.X != 10 || a.Y != -20 {
		t.Errorf("position = (%g, %g)", a.X, a.Y)
	}
	if a.Saying != "S" {
		t.Errorf("saying = %q (my name)", a.Saying)
	}
}

func TestStageBlocksFailInWorkers(t *testing.T) {
	for _, b := range []*blocks.Block{
		blocks.Forward(blocks.Num(1)),
		blocks.TurnRight(blocks.Num(1)),
		blocks.TurnLeft(blocks.Num(1)),
		blocks.GotoXY(blocks.Num(0), blocks.Num(0)),
		blocks.Think(blocks.Txt("x")),
		blocks.Say(blocks.Txt("x")),
		blocks.ResetTimer(),
		blocks.Broadcast(blocks.Txt("x")),
		blocks.BroadcastAndWait(blocks.Txt("x")),
		blocks.CreateCloneOf(blocks.Txt("myself")),
		blocks.DeleteThisClone(),
	} {
		ring := &blocks.Ring{Body: blocks.NewScript(b)}
		if _, err := CallFunction(ring, nil, 0); err == nil {
			t.Errorf("%s inside a worker should error", b.Op)
		}
	}
	ringTimer := &blocks.Ring{Body: blocks.Timer()}
	if _, err := CallFunction(ringTimer, nil, 0); err == nil {
		t.Error("timer inside a worker should error")
	}
	ringName := &blocks.Ring{Body: blocks.MyName()}
	if _, err := CallFunction(ringName, nil, 0); err == nil {
		t.Error("my-name inside a worker should error")
	}
}

func TestMonadicRemainingFunctions(t *testing.T) {
	cases := map[string]string{
		"cos":  "1",  // cos 0°
		"tan":  "0",  // tan 0°
		"ln":   "0",  // ln 1
		"log":  "2",  // log10 100
		"e^":   "1",  // e^0
		"asin": "90", // asin 1
		"acos": "0",  // acos 1
		"atan": "45", // atan 1
	}
	args := map[string]float64{
		"cos": 0, "tan": 0, "ln": 1, "log": 100, "e^": 0,
		"asin": 1, "acos": 1, "atan": 1,
	}
	for fn, want := range cases {
		v := evalR(t, blocks.Monadic(fn, blocks.Num(args[fn])))
		if v.String() != want {
			t.Errorf("%s(%g) = %s, want %s", fn, args[fn], v, want)
		}
	}
}

func TestLogicCoercionErrors(t *testing.T) {
	m := newTestMachine()
	for _, b := range []*blocks.Block{
		blocks.And(blocks.Num(1), blocks.BoolLit(true)),
		blocks.And(blocks.BoolLit(true), blocks.Num(1)),
		blocks.Or(blocks.Num(1), blocks.BoolLit(true)),
		blocks.Or(blocks.BoolLit(false), blocks.Num(1)),
		blocks.Not(blocks.Num(1)),
	} {
		if _, err := m.EvalReporter(b); err == nil {
			t.Errorf("%s should error (numbers are not booleans)", b.Describe())
		}
		m = newTestMachine()
	}
}

func TestListMutationErrorsViaBlocks(t *testing.T) {
	m := newTestMachine()
	m.GlobalFrame().Declare("L", value.NewList())
	for _, b := range []*blocks.Block{
		blocks.DeleteFromList(blocks.Num(1), blocks.Var("L")),
		blocks.InsertInList(blocks.Num(1), blocks.Num(5), blocks.Var("L")),
		blocks.ReplaceInList(blocks.Num(1), blocks.Var("L"), blocks.Num(2)),
		blocks.DeleteFromList(blocks.Num(1), blocks.Num(9)), // not a list
		blocks.InsertInList(blocks.Num(1), blocks.Num(1), blocks.Num(9)),
		blocks.ReplaceInList(blocks.Num(1), blocks.Num(9), blocks.Num(2)),
		blocks.AddToList(blocks.Num(1), blocks.Num(9)),
		blocks.ItemOf(blocks.Num(1), blocks.Num(9)),
		blocks.LengthOf(blocks.Num(9)),
		blocks.ListContains(blocks.Num(9), blocks.Num(1)),
	} {
		if _, err := m.RunScript(blocks.NewScript(b)); err == nil {
			t.Errorf("%s should error", b.Describe())
		}
		m = newTestMachine()
		m.GlobalFrame().Declare("L", value.NewList())
	}
}

func TestChangeVarErrors(t *testing.T) {
	m := newTestMachine()
	m.GlobalFrame().Declare("s", value.Text("pear"))
	if _, err := m.RunScript(blocks.NewScript(
		blocks.ChangeVar("s", blocks.Num(1)))); err == nil {
		t.Error("changing a non-numeric variable should error")
	}
	m = newTestMachine()
	m.GlobalFrame().Declare("n", value.Number(1))
	if _, err := m.RunScript(blocks.NewScript(
		blocks.ChangeVar("n", blocks.Txt("pear")))); err == nil {
		t.Error("changing by a non-number should error")
	}
}

func TestCreateCloneOfNamedSprite(t *testing.T) {
	p := blocks.NewProject("named")
	a := p.AddSprite(blocks.NewSprite("A"))
	p.AddSprite(blocks.NewSprite("B"))
	a.AddScript(blocks.HatGreenFlag, "", blocks.NewScript(
		blocks.CreateCloneOf(blocks.Txt("B")),
	))
	m := NewMachine(p, nil)
	m.GreenFlag()
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if m.Stage.CloneCount("B") != 1 {
		t.Error("A should have cloned B")
	}
	// Cloning a missing sprite errors.
	p2 := blocks.NewProject("missing")
	s2 := p2.AddSprite(blocks.NewSprite("S"))
	s2.AddScript(blocks.HatGreenFlag, "", blocks.NewScript(
		blocks.CreateCloneOf(blocks.Txt("Ghost")),
	))
	m2 := NewMachine(p2, nil)
	m2.GreenFlag()
	if err := m2.Run(0); err == nil || !strings.Contains(err.Error(), "no sprite") {
		t.Errorf("err = %v", err)
	}
}

func TestDeleteCloneOnOriginalIsNoop(t *testing.T) {
	p := blocks.NewProject("noop")
	sp := p.AddSprite(blocks.NewSprite("S"))
	sp.AddScript(blocks.HatGreenFlag, "", blocks.NewScript(
		blocks.DeleteThisClone(),
		blocks.Say(blocks.Txt("still here")),
	))
	m := NewMachine(p, nil)
	m.GreenFlag()
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if m.Stage.Actor("S").Saying != "still here" {
		t.Error("delete-this-clone on an original must be a no-op")
	}
}

func TestProcessAccessors(t *testing.T) {
	m := newTestMachine()
	sp := blocks.NewSprite("S")
	proc := m.SpawnScript(sp, nil, blocks.NewScript(
		blocks.Say(blocks.Quotient(blocks.Num(1), blocks.Num(0)))))
	m.Run(0)
	if proc.Err() == nil {
		t.Error("Err() should report the failure")
	}
	if proc.RootFrame() == nil {
		t.Error("RootFrame() should exist")
	}
}

func TestTakeImplicitExhaustion(t *testing.T) {
	f := NewFrame(nil)
	f.BindImplicits([]value.Value{value.Number(1), value.Number(2)})
	if f.TakeImplicit().(value.Number) != 1 {
		t.Error("first implicit")
	}
	if f.TakeImplicit().(value.Number) != 2 {
		t.Error("second implicit")
	}
	if !value.IsNothing(f.TakeImplicit()) {
		t.Error("exhausted implicits yield nothing")
	}
	// No implicits anywhere in the chain.
	g := NewFrame(nil)
	if !value.IsNothing(g.TakeImplicit()) {
		t.Error("no implicits yields nothing")
	}
}

func TestTraceBlockHook(t *testing.T) {
	m := newTestMachine()
	var seen []string
	m.TraceBlock = func(p *Process, b *blocks.Block) {
		seen = append(seen, b.Op)
	}
	if _, err := m.RunScript(blocks.NewScript(
		blocks.DeclareLocal("x"),
		blocks.SetVar("x", blocks.Sum(blocks.Num(1), blocks.Num(2))),
		blocks.Report(blocks.Var("x")),
	)); err != nil {
		t.Fatal(err)
	}
	want := []string{"doDeclareVariables", "reportSum", "doSetVar", "doReport"}
	if len(seen) != len(want) {
		t.Fatalf("trace = %v", seen)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Errorf("trace[%d] = %s, want %s", i, seen[i], want[i])
		}
	}
}
