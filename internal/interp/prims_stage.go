package interp

import (
	"errors"

	"repro/internal/value"
)

// This file implements motion, looks, sensing, event, and cloning opcodes —
// everything that touches the stage. None of these are available to
// detached (worker) processes: a Web Worker has no DOM, and a shipped
// function has no sprite (§4.1).

func init() {
	RegisterPrimitive("forward", primForward)
	RegisterPrimitive("turn", primTurn)
	RegisterPrimitive("turnLeft", primTurnLeft)
	RegisterPrimitive("gotoXY", primGotoXY)
	RegisterPrimitive("bubble", primSay)
	RegisterPrimitive("doThink", primThink)
	RegisterPrimitive("getTimer", primGetTimer)
	RegisterPrimitive("doResetTimer", primResetTimer)
	RegisterPrimitive("reportMyName", primMyName)
	RegisterPrimitive("createClone", primCreateClone)
	RegisterPrimitive("removeClone", primRemoveClone)
	RegisterPrimitive("doBroadcast", primBroadcast)
	RegisterPrimitive("doBroadcastAndWait", primBroadcastAndWait)
}

// errNoStage is what stage blocks report inside a worker, mirroring the
// browser's "Worker has no access to the DOM".
var errNoStage = errors.New("not available inside a web worker (no stage)")

func requireStage(p *Process) error {
	if p.Machine == nil || p.Actor == nil {
		return errNoStage
	}
	return nil
}

func primForward(p *Process, ctx *Context) (value.Value, Control, error) {
	if err := requireStage(p); err != nil {
		return nil, Done, err
	}
	n, err := value.ToNumber(ctx.Inputs[0])
	if err != nil {
		return nil, Done, err
	}
	p.Actor.MoveForward(float64(n))
	return nil, Done, nil
}

func primTurn(p *Process, ctx *Context) (value.Value, Control, error) {
	if err := requireStage(p); err != nil {
		return nil, Done, err
	}
	n, err := value.ToNumber(ctx.Inputs[0])
	if err != nil {
		return nil, Done, err
	}
	p.Actor.Turn(float64(n))
	return nil, Done, nil
}

func primTurnLeft(p *Process, ctx *Context) (value.Value, Control, error) {
	if err := requireStage(p); err != nil {
		return nil, Done, err
	}
	n, err := value.ToNumber(ctx.Inputs[0])
	if err != nil {
		return nil, Done, err
	}
	p.Actor.Turn(-float64(n))
	return nil, Done, nil
}

func primGotoXY(p *Process, ctx *Context) (value.Value, Control, error) {
	if err := requireStage(p); err != nil {
		return nil, Done, err
	}
	x, err := value.ToNumber(ctx.Inputs[0])
	if err != nil {
		return nil, Done, err
	}
	y, err := value.ToNumber(ctx.Inputs[1])
	if err != nil {
		return nil, Done, err
	}
	p.Actor.GotoXY(float64(x), float64(y))
	return nil, Done, nil
}

func primSay(p *Process, ctx *Context) (value.Value, Control, error) {
	if err := requireStage(p); err != nil {
		return nil, Done, err
	}
	p.Actor.Say(ctx.Inputs[0].String())
	return nil, Done, nil
}

func primThink(p *Process, ctx *Context) (value.Value, Control, error) {
	if err := requireStage(p); err != nil {
		return nil, Done, err
	}
	p.Actor.Say("… " + ctx.Inputs[0].String())
	return nil, Done, nil
}

func primGetTimer(p *Process, ctx *Context) (value.Value, Control, error) {
	if p.Machine == nil {
		return nil, Done, errNoStage
	}
	return value.Number(float64(p.Machine.Stage.Timer.Elapsed())), Done, nil
}

func primResetTimer(p *Process, ctx *Context) (value.Value, Control, error) {
	if p.Machine == nil {
		return nil, Done, errNoStage
	}
	p.Machine.Stage.Timer.Reset()
	return nil, Done, nil
}

func primMyName(p *Process, ctx *Context) (value.Value, Control, error) {
	if err := requireStage(p); err != nil {
		return nil, Done, err
	}
	return value.Text(p.Actor.Label()), Done, nil
}

func primCreateClone(p *Process, ctx *Context) (value.Value, Control, error) {
	if err := requireStage(p); err != nil {
		return nil, Done, err
	}
	name := ctx.Inputs[0].String()
	target := p.Actor
	if name != "" && name != "myself" {
		target = p.Machine.Stage.Actor(name)
		if target == nil {
			return nil, Done, errors.New("no sprite named " + name)
		}
	}
	p.Machine.CreateClone(target)
	return nil, Done, nil
}

func primRemoveClone(p *Process, ctx *Context) (value.Value, Control, error) {
	if err := requireStage(p); err != nil {
		return nil, Done, err
	}
	if !p.Actor.IsClone() {
		return nil, Done, nil // originals ignore "delete this clone"
	}
	p.Machine.RemoveClone(p.Actor)
	p.Stop()
	return nil, Replaced, nil
}

func primBroadcast(p *Process, ctx *Context) (value.Value, Control, error) {
	if p.Machine == nil {
		return nil, Done, errNoStage
	}
	p.Machine.StartBroadcast(ctx.Inputs[0].String())
	return nil, Done, nil
}

type broadcastWaitState struct{ procs []*Process }

func primBroadcastAndWait(p *Process, ctx *Context) (value.Value, Control, error) {
	if p.Machine == nil {
		return nil, Done, errNoStage
	}
	const argc = 1
	st, ok := scratchState(ctx, argc)
	if !ok {
		s := &broadcastWaitState{procs: p.Machine.StartBroadcast(ctx.Inputs[0].String())}
		putScratch(ctx, "broadcastWait", s)
		st = s
	}
	s := st.(*broadcastWaitState)
	for _, child := range s.procs {
		if !child.Done() {
			p.PushYield()
			return nil, Again, nil
		}
	}
	return nil, Done, nil
}
