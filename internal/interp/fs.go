package interp

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// FileSystem is the storage behind the file blocks of §6.3: "for
// production use, [Snap!] needs to have a way to consume existing data
// files. Likewise, it needs a way to write data to files for use by other
// programs outside of Snap!." Machines default to an in-memory store
// (tests, examples); cmd-line tools can attach a DirFS rooted at a real
// directory.
type FileSystem interface {
	// ReadFile returns the file's contents.
	ReadFile(name string) (string, error)
	// WriteFile replaces the file's contents.
	WriteFile(name, content string) error
	// AppendFile appends to the file, creating it if needed.
	AppendFile(name, content string) error
}

// MemFS is the in-memory FileSystem.
type MemFS map[string]string

// ReadFile implements FileSystem.
func (m MemFS) ReadFile(name string) (string, error) {
	c, ok := m[name]
	if !ok {
		return "", fmt.Errorf("no file named %q", name)
	}
	return c, nil
}

// WriteFile implements FileSystem.
func (m MemFS) WriteFile(name, content string) error {
	m[name] = content
	return nil
}

// AppendFile implements FileSystem.
func (m MemFS) AppendFile(name, content string) error {
	m[name] += content
	return nil
}

// DirFS is a FileSystem rooted at a host directory. File names are
// confined to the root: path separators and traversal are rejected, which
// keeps a block program from reading outside its project directory.
type DirFS struct {
	Root string
}

func (d DirFS) resolve(name string) (string, error) {
	if name == "" || strings.ContainsAny(name, `/\`) || strings.Contains(name, "..") {
		return "", fmt.Errorf("invalid file name %q", name)
	}
	return filepath.Join(d.Root, name), nil
}

// ReadFile implements FileSystem.
func (d DirFS) ReadFile(name string) (string, error) {
	path, err := d.resolve(name)
	if err != nil {
		return "", err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	return string(data), nil
}

// WriteFile implements FileSystem.
func (d DirFS) WriteFile(name, content string) error {
	path, err := d.resolve(name)
	if err != nil {
		return err
	}
	return os.WriteFile(path, []byte(content), 0o644)
}

// AppendFile implements FileSystem.
func (d DirFS) AppendFile(name, content string) error {
	path, err := d.resolve(name)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.WriteString(content)
	return err
}
