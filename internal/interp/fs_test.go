package interp

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/blocks"
	"repro/internal/value"
)

func TestFileBlocksMemFS(t *testing.T) {
	m := newTestMachine()
	script := blocks.NewScript(
		blocks.WriteFile(blocks.Txt("out.txt"), blocks.Txt("line1\n")),
		blocks.AppendToFile(blocks.Txt("out.txt"), blocks.Txt("line2\n")),
		blocks.Report(blocks.ReadFile(blocks.Txt("out.txt"))),
	)
	v, err := m.RunScript(script)
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "line1\nline2\n" {
		t.Errorf("file contents = %q", v)
	}
}

func TestFileLinesBlock(t *testing.T) {
	m := newTestMachine()
	m.FS().WriteFile("data.csv", "32\n212\n122\n")
	v, err := m.EvalReporter(blocks.FileLines(blocks.Txt("data.csv")))
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "[32 212 122]" {
		t.Errorf("lines = %s", v)
	}
	// Lines feed directly into the climate pipeline: map over them.
	m2 := newTestMachine()
	m2.FS().WriteFile("temps", "32\n212\n")
	v, err = m2.EvalReporter(blocks.Map(
		blocks.RingOf(blocks.Quotient(
			blocks.Product(blocks.Num(5), blocks.Difference(blocks.Empty(), blocks.Num(32))),
			blocks.Num(9))),
		blocks.FileLines(blocks.Txt("temps"))))
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "[0 100]" {
		t.Errorf("converted = %s", v)
	}
}

func TestFileLinesEmpty(t *testing.T) {
	m := newTestMachine()
	m.FS().WriteFile("empty", "")
	v, err := m.EvalReporter(blocks.FileLines(blocks.Txt("empty")))
	if err != nil || v.(*value.List).Len() != 0 {
		t.Errorf("empty file lines = %v, %v", v, err)
	}
}

func TestFileErrors(t *testing.T) {
	m := newTestMachine()
	if _, err := m.EvalReporter(blocks.ReadFile(blocks.Txt("ghost"))); err == nil {
		t.Error("reading a missing file should error")
	}
	// Workers have no file access.
	ring := &blocks.Ring{Body: blocks.NewScript(
		blocks.Report(blocks.ReadFile(blocks.Txt("x"))))}
	if _, err := CallFunction(ring, nil, 0); err == nil {
		t.Error("file blocks inside a worker should error")
	}
}

func TestDirFS(t *testing.T) {
	dir := t.TempDir()
	fs := DirFS{Root: dir}
	if err := fs.WriteFile("a.txt", "hello"); err != nil {
		t.Fatal(err)
	}
	if err := fs.AppendFile("a.txt", " world"); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("a.txt")
	if err != nil || got != "hello world" {
		t.Errorf("read = %q, %v", got, err)
	}
	if err := fs.AppendFile("fresh.txt", "new"); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(filepath.Join(dir, "fresh.txt"))
	if string(raw) != "new" {
		t.Error("append should create the file")
	}
	// Traversal and separators are rejected.
	for _, bad := range []string{"", "../etc/passwd", "a/b", `a\b`, ".."} {
		if _, err := fs.ReadFile(bad); err == nil {
			t.Errorf("ReadFile(%q) should be rejected", bad)
		}
		if err := fs.WriteFile(bad, "x"); err == nil {
			t.Errorf("WriteFile(%q) should be rejected", bad)
		}
		if err := fs.AppendFile(bad, "x"); err == nil {
			t.Errorf("AppendFile(%q) should be rejected", bad)
		}
	}
	if _, err := fs.ReadFile("missing.txt"); err == nil {
		t.Error("missing file should error")
	}
}

func TestMachineDirFS(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "in.txt"), []byte("42"), 0o644)
	m := newTestMachine()
	m.SetFS(DirFS{Root: dir})
	script := blocks.NewScript(
		blocks.WriteFile(blocks.Txt("out.txt"),
			blocks.Reporter(blocks.Join(
				blocks.Sum(blocks.ReadFile(blocks.Txt("in.txt")), blocks.Num(1))))),
	)
	if _, err := m.RunScript(script); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "out.txt"))
	if err != nil || strings.TrimSpace(string(raw)) != "43" {
		t.Errorf("out.txt = %q, %v", raw, err)
	}
}
