package interp

import (
	"errors"
	"strings"

	"repro/internal/value"
)

// The file blocks of §6.3 — data-file ingestion and export without
// "compromising the user-friendly interface": read a whole file, read it
// as a list of lines, write, append. Like the stage, files live on the
// machine, so workers (detached processes) cannot reach them.

func init() {
	RegisterPrimitive("reportReadFile", primReadFile)
	RegisterPrimitive("reportFileLines", primFileLines)
	RegisterPrimitive("doWriteFile", primWriteFile)
	RegisterPrimitive("doAppendToFile", primAppendToFile)
}

var errNoFS = errors.New("files are not available inside a web worker")

func machineFS(p *Process) (FileSystem, error) {
	if p.Machine == nil {
		return nil, errNoFS
	}
	return p.Machine.FS(), nil
}

func primReadFile(p *Process, ctx *Context) (value.Value, Control, error) {
	fs, err := machineFS(p)
	if err != nil {
		return nil, Done, err
	}
	content, err := fs.ReadFile(ctx.Inputs[0].String())
	if err != nil {
		return nil, Done, err
	}
	return value.Text(content), Done, nil
}

func primFileLines(p *Process, ctx *Context) (value.Value, Control, error) {
	fs, err := machineFS(p)
	if err != nil {
		return nil, Done, err
	}
	content, err := fs.ReadFile(ctx.Inputs[0].String())
	if err != nil {
		return nil, Done, err
	}
	content = strings.TrimSuffix(content, "\n")
	if content == "" {
		return value.NewList(), Done, nil
	}
	return value.FromStrings(strings.Split(content, "\n")), Done, nil
}

func primWriteFile(p *Process, ctx *Context) (value.Value, Control, error) {
	fs, err := machineFS(p)
	if err != nil {
		return nil, Done, err
	}
	return nil, Done, fs.WriteFile(ctx.Inputs[0].String(), ctx.Inputs[1].String())
}

func primAppendToFile(p *Process, ctx *Context) (value.Value, Control, error) {
	fs, err := machineFS(p)
	if err != nil {
		return nil, Done, err
	}
	return nil, Done, fs.AppendFile(ctx.Inputs[0].String(), ctx.Inputs[1].String())
}
