package interp

import (
	"fmt"
	"sync/atomic"
)

// Value-size governance for hosted execution. A beginner's project handed
// to a shared service can ask for `numbers from 1 to 1e9` or double a text
// in a loop; unbounded, a single session OOMs the whole process long before
// any step budget fires. The caps are process-wide (set once by the daemon,
// zero in the CLI tools and tests) because they protect the process, not
// the session — and because they are consulted from detached worker
// evaluation (interp.CallFunction) that has no Machine to hang them off.
var (
	capListLen atomic.Int64
	capTextLen atomic.Int64
)

// SetValueCaps installs process-wide value-size caps: the maximum length of
// any list a primitive builds or grows, and the maximum byte length of any
// text a primitive produces. Zero disables a cap. Safe to call
// concurrently; intended to be called once at daemon startup.
func SetValueCaps(maxListLen, maxTextLen int) {
	capListLen.Store(int64(maxListLen))
	capTextLen.Store(int64(maxTextLen))
}

// ValueCaps reports the installed caps (0 = unlimited).
func ValueCaps() (maxListLen, maxTextLen int) {
	return int(capListLen.Load()), int(capTextLen.Load())
}

// checkListLen admits a list about to reach n elements.
func checkListLen(n int) error {
	if cap := capListLen.Load(); cap > 0 && int64(n) > cap {
		return fmt.Errorf("list of %d elements exceeds the service cap of %d", n, cap)
	}
	return nil
}

// checkTextLen admits a text about to reach n bytes.
func checkTextLen(n int) error {
	if cap := capTextLen.Load(); cap > 0 && int64(n) > cap {
		return fmt.Errorf("text of %d bytes exceeds the service cap of %d", n, cap)
	}
	return nil
}
