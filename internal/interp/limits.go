package interp

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/value"
)

// Value-size governance for hosted execution. A beginner's project handed
// to a shared service can ask for `numbers from 1 to 1e9` or double a text
// in a loop; unbounded, a single session OOMs the whole process long before
// any step budget fires. The caps are process-wide (set once by the daemon,
// zero in the CLI tools and tests) because they protect the process, not
// the session — and because they are consulted from detached worker
// evaluation (interp.CallFunction) that has no Machine to hang them off.
var (
	capListLen atomic.Int64
	capTextLen atomic.Int64
)

// SetValueCaps installs process-wide value-size caps: the maximum length of
// any list a primitive builds or grows, and the maximum byte length of any
// text a primitive produces. Zero disables a cap. Safe to call
// concurrently; intended to be called once at daemon startup.
func SetValueCaps(maxListLen, maxTextLen int) {
	capListLen.Store(int64(maxListLen))
	capTextLen.Store(int64(maxTextLen))
}

// ValueCaps reports the installed caps (0 = unlimited).
func ValueCaps() (maxListLen, maxTextLen int) {
	return int(capListLen.Load()), int(capTextLen.Load())
}

// checkListLen admits a list about to reach n elements.
func checkListLen(n int) error {
	if cap := capListLen.Load(); cap > 0 && int64(n) > cap {
		return fmt.Errorf("list of %d elements exceeds the service cap of %d", n, cap)
	}
	return nil
}

// maxNumbersSpan is the hard ceiling on the length of a "numbers from _
// to _" result, enforced even when no service cap is installed. It exists
// because the length guard must run before any allocation: a span that
// does not fit in an int (for example `numbers from 1 to 1e18`) used to be
// truncated by the int conversion, sail past the cap check, and allocate
// until the process died.
const maxNumbersSpan = 1 << 31

// CheckNumbersBounds validates the operands of "numbers from _ to _"
// before any list is built, in float space so no overflow can hide a bad
// bound. Every tier (tree walker, bytecode VM, compiled kernels) calls it
// so the error wording is identical everywhere. Non-finite bounds — which
// value.ToNumber can no longer produce from text, but arithmetic like 1/0
// still can — are rejected outright; finite spans are checked against the
// engine ceiling and then the installed service cap.
func CheckNumbersBounds(from, to float64) error {
	if math.IsInf(from, 0) || math.IsNaN(from) ||
		math.IsInf(to, 0) || math.IsNaN(to) {
		return fmt.Errorf("numbers from %s to %s: bounds must be finite",
			value.Number(from), value.Number(to))
	}
	span := math.Abs(to-from) + 1
	if span > maxNumbersSpan {
		return fmt.Errorf("list of %s elements exceeds the engine limit of %d",
			value.Number(span), int64(maxNumbersSpan))
	}
	return checkListLen(int(span))
}

// checkTextLen admits a text about to reach n bytes.
func checkTextLen(n int) error {
	if cap := capTextLen.Load(); cap > 0 && int64(n) > cap {
		return fmt.Errorf("text of %d bytes exceeds the service cap of %d", n, cap)
	}
	return nil
}
