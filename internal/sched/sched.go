// Package sched simulates the supercomputer batch scheduler of §6.3:
// "Supercomputers ... execute large, long-running jobs and use
// sophisticated batch scheduling systems. The Snap! environment can be
// extended to generate an outline of the batch submission script ...
// submit the job, monitor waiting in the queue until execution, then
// collect the results and display them to the user."
//
// The cluster is simulated in virtual ticks: jobs request nodes and a
// walltime, wait in the queue under a FIFO or EASY-backfill policy, run
// for their actual duration, and either complete (their output becomes
// collectable) or get killed at the walltime limit — the full workflow the
// paper's IDE vision needs, exercised without a machine room.
package sched

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// State is a job's lifecycle state.
type State int

// The job states, in lifecycle order.
const (
	Pending State = iota
	Running
	Completed
	Failed
)

// String names the state the way squeue would.
func (s State) String() string {
	switch s {
	case Pending:
		return "PENDING"
	case Running:
		return "RUNNING"
	case Completed:
		return "COMPLETED"
	case Failed:
		return "FAILED"
	}
	return fmt.Sprintf("STATE(%d)", int(s))
}

// Policy selects the queueing discipline.
type Policy int

// The scheduling policies.
const (
	// FIFO starts jobs strictly in submission order.
	FIFO Policy = iota
	// Backfill is EASY backfilling: later jobs may start early when
	// they cannot delay the queue head's reservation.
	Backfill
)

// String names the policy.
func (p Policy) String() string {
	if p == Backfill {
		return "backfill"
	}
	return "fifo"
}

// JobSpec describes a submission.
type JobSpec struct {
	Name string
	// Nodes requested; must be ≥ 1 and ≤ cluster size.
	Nodes int
	// Walltime is the requested limit in ticks.
	Walltime int
	// Duration is the job's actual runtime in ticks; jobs exceeding
	// their walltime are killed.
	Duration int
	// Run produces the job's output; invoked at completion.
	Run func() string
	// After lists job IDs this job depends on (sbatch's
	// --dependency=afterok): it stays pending until every listed job
	// completes, and fails immediately if any of them fails.
	After []int
}

// Job is a submitted job.
type Job struct {
	ID    int
	Spec  JobSpec
	State State
	// SubmitTick, StartTick, EndTick trace the lifecycle (-1 = not yet).
	SubmitTick, StartTick, EndTick int64
	// Output holds the collected result after completion.
	Output string
	// Reason explains a failure.
	Reason string
}

// Cluster is the simulated machine.
type Cluster struct {
	nodes  int
	free   int
	policy Policy
	now    int64
	nextID int

	queue   []*Job
	running []*Job
	done    []*Job
}

// NewCluster builds a cluster with the given node count and policy.
func NewCluster(nodes int, policy Policy) *Cluster {
	if nodes < 1 {
		nodes = 1
	}
	return &Cluster{nodes: nodes, free: nodes, policy: policy}
}

// Now reports the current tick.
func (c *Cluster) Now() int64 { return c.now }

// FreeNodes reports currently idle nodes.
func (c *Cluster) FreeNodes() int { return c.free }

// Submit enqueues a job.
func (c *Cluster) Submit(spec JobSpec) (*Job, error) {
	if spec.Nodes < 1 {
		return nil, errors.New("a job needs at least one node")
	}
	if spec.Nodes > c.nodes {
		return nil, fmt.Errorf("job wants %d nodes but the cluster has %d", spec.Nodes, c.nodes)
	}
	if spec.Walltime < 1 {
		return nil, errors.New("a job needs a positive walltime")
	}
	if spec.Duration < 1 {
		spec.Duration = 1
	}
	c.nextID++
	j := &Job{ID: c.nextID, Spec: spec, State: Pending,
		SubmitTick: c.now, StartTick: -1, EndTick: -1}
	c.queue = append(c.queue, j)
	c.schedule()
	return j, nil
}

// SubmitScript parses a generated batch script (the #SBATCH directives of
// codegen.BatchScript) and submits it — the paper's "submit the job" step.
// duration is the job's actual runtime; run produces its output.
func (c *Cluster) SubmitScript(script string, duration int, run func() string) (*Job, error) {
	spec := JobSpec{Nodes: 1, Walltime: 60, Duration: duration, Run: run}
	for _, line := range strings.Split(script, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "#SBATCH ") {
			continue
		}
		directive := strings.TrimPrefix(line, "#SBATCH ")
		key, val, ok := strings.Cut(directive, "=")
		if !ok {
			continue
		}
		switch key {
		case "--job-name":
			spec.Name = val
		case "--nodes":
			n, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("bad --nodes %q", val)
			}
			spec.Nodes = n
		case "--time":
			// HH:MM:SS; one tick per minute.
			parts := strings.Split(val, ":")
			if len(parts) != 3 {
				return nil, fmt.Errorf("bad --time %q", val)
			}
			h, err1 := strconv.Atoi(parts[0])
			m, err2 := strconv.Atoi(parts[1])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("bad --time %q", val)
			}
			spec.Walltime = h*60 + m
		}
	}
	if spec.Name == "" {
		return nil, errors.New("batch script names no job (--job-name)")
	}
	return c.Submit(spec)
}

// Tick advances virtual time by one tick: running jobs progress (and
// complete or get killed), then the queue is scheduled.
func (c *Cluster) Tick() {
	c.now++
	still := c.running[:0]
	for _, j := range c.running {
		elapsed := c.now - j.StartTick
		switch {
		case elapsed >= int64(j.Spec.Duration):
			j.State = Completed
			j.EndTick = c.now
			if j.Spec.Run != nil {
				j.Output = j.Spec.Run()
			}
			c.free += j.Spec.Nodes
			c.done = append(c.done, j)
		case elapsed >= int64(j.Spec.Walltime):
			j.State = Failed
			j.Reason = "walltime limit exceeded"
			j.EndTick = c.now
			c.free += j.Spec.Nodes
			c.done = append(c.done, j)
		default:
			still = append(still, j)
		}
	}
	c.running = still
	c.schedule()
}

func (c *Cluster) start(j *Job) {
	j.State = Running
	j.StartTick = c.now
	c.free -= j.Spec.Nodes
	c.running = append(c.running, j)
}

// depState reports a job's dependency status: eligible, waiting, or doomed
// (a dependency failed).
type depState int

const (
	depReady depState = iota
	depWaiting
	depFailed
)

func (c *Cluster) deps(j *Job) depState {
	state := depReady
	for _, id := range j.Spec.After {
		found := false
		for _, d := range c.done {
			if d.ID == id {
				found = true
				if d.State == Failed {
					return depFailed
				}
			}
		}
		if !found {
			state = depWaiting
		}
	}
	return state
}

// failDoomed removes queued jobs whose dependencies failed.
func (c *Cluster) failDoomed() {
	kept := c.queue[:0]
	for _, j := range c.queue {
		if c.deps(j) == depFailed {
			j.State = Failed
			j.Reason = "dependency failed"
			j.EndTick = c.now
			c.done = append(c.done, j)
			continue
		}
		kept = append(kept, j)
	}
	c.queue = kept
}

// schedule starts queued jobs per the policy.
func (c *Cluster) schedule() {
	c.failDoomed()
	// Start in order while the head fits and its dependencies are met.
	for len(c.queue) > 0 && c.queue[0].Spec.Nodes <= c.free &&
		c.deps(c.queue[0]) == depReady {
		c.start(c.queue[0])
		c.queue = c.queue[1:]
	}
	if c.policy != Backfill || len(c.queue) == 0 {
		return
	}
	// EASY backfill: compute the head's shadow start (the tick enough
	// nodes free up), then start any later job that fits now and ends
	// by the shadow start.
	head := c.queue[0]
	shadow, ok := c.shadowStart(head.Spec.Nodes)
	if !ok {
		return
	}
	rest := c.queue[1:]
	kept := rest[:0]
	for _, j := range rest {
		fitsNow := j.Spec.Nodes <= c.free
		endsInTime := c.now+int64(min(j.Spec.Duration, j.Spec.Walltime)) <= shadow
		if fitsNow && endsInTime && c.deps(j) == depReady {
			c.start(j)
			continue
		}
		kept = append(kept, j)
	}
	c.queue = append(c.queue[:1], kept...)
}

// shadowStart computes the earliest tick at which `need` nodes will be
// free, assuming running jobs release nodes at their walltime bound.
func (c *Cluster) shadowStart(need int) (int64, bool) {
	free := c.free
	if free >= need {
		return c.now, true
	}
	// Collect release times, earliest first.
	type release struct {
		at    int64
		nodes int
	}
	var rels []release
	for _, j := range c.running {
		bound := int64(j.Spec.Walltime)
		if int64(j.Spec.Duration) < bound {
			bound = int64(j.Spec.Duration)
		}
		rels = append(rels, release{at: j.StartTick + bound, nodes: j.Spec.Nodes})
	}
	for i := 1; i < len(rels); i++ {
		for k := i; k > 0 && rels[k].at < rels[k-1].at; k-- {
			rels[k], rels[k-1] = rels[k-1], rels[k]
		}
	}
	for _, r := range rels {
		free += r.nodes
		if free >= need {
			return r.at, true
		}
	}
	return 0, false
}

// RunUntilDone ticks until no jobs are pending or running (or the tick
// budget runs out, which returns an error).
func (c *Cluster) RunUntilDone(maxTicks int) error {
	for i := 0; i < maxTicks; i++ {
		if len(c.queue) == 0 && len(c.running) == 0 {
			return nil
		}
		c.Tick()
	}
	if len(c.queue) == 0 && len(c.running) == 0 {
		return nil
	}
	return fmt.Errorf("cluster still busy after %d ticks", maxTicks)
}

// Queue reports the pending jobs in order.
func (c *Cluster) Queue() []*Job {
	out := make([]*Job, len(c.queue))
	copy(out, c.queue)
	return out
}

// Done reports finished jobs in completion order.
func (c *Cluster) Done() []*Job {
	out := make([]*Job, len(c.done))
	copy(out, c.done)
	return out
}

// Collect returns a completed job's output — the paper's "collect the
// results and display them to the user".
func (c *Cluster) Collect(j *Job) (string, error) {
	switch j.State {
	case Completed:
		return j.Output, nil
	case Failed:
		return "", fmt.Errorf("job %d failed: %s", j.ID, j.Reason)
	default:
		return "", fmt.Errorf("job %d is %s", j.ID, j.State)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
