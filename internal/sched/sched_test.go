package sched

import (
	"strings"
	"testing"

	"repro/internal/codegen"
)

func TestSubmitValidation(t *testing.T) {
	c := NewCluster(4, FIFO)
	if _, err := c.Submit(JobSpec{Nodes: 0, Walltime: 5}); err == nil {
		t.Error("zero nodes should be rejected")
	}
	if _, err := c.Submit(JobSpec{Nodes: 5, Walltime: 5}); err == nil {
		t.Error("oversized job should be rejected")
	}
	if _, err := c.Submit(JobSpec{Nodes: 1, Walltime: 0}); err == nil {
		t.Error("zero walltime should be rejected")
	}
}

func TestJobLifecycle(t *testing.T) {
	c := NewCluster(2, FIFO)
	j, err := c.Submit(JobSpec{Name: "a", Nodes: 1, Walltime: 10, Duration: 3,
		Run: func() string { return "result!" }})
	if err != nil {
		t.Fatal(err)
	}
	if j.State != Running {
		t.Fatalf("job should start immediately on a free cluster, state = %v", j.State)
	}
	if _, err := c.Collect(j); err == nil {
		t.Error("collecting a running job should error")
	}
	if err := c.RunUntilDone(100); err != nil {
		t.Fatal(err)
	}
	if j.State != Completed || j.EndTick-j.StartTick != 3 {
		t.Errorf("job = %v, ran %d ticks", j.State, j.EndTick-j.StartTick)
	}
	out, err := c.Collect(j)
	if err != nil || out != "result!" {
		t.Errorf("collect = %q, %v", out, err)
	}
}

func TestQueueingFIFO(t *testing.T) {
	c := NewCluster(2, FIFO)
	big, _ := c.Submit(JobSpec{Name: "big", Nodes: 2, Walltime: 10, Duration: 5})
	small, _ := c.Submit(JobSpec{Name: "small", Nodes: 1, Walltime: 10, Duration: 1})
	if big.State != Running || small.State != Pending {
		t.Fatalf("states: big=%v small=%v", big.State, small.State)
	}
	if len(c.Queue()) != 1 {
		t.Error("queue length")
	}
	c.RunUntilDone(100)
	if small.StartTick < big.EndTick {
		t.Error("FIFO must not start the small job before the big one finishes")
	}
}

func TestWalltimeKill(t *testing.T) {
	c := NewCluster(1, FIFO)
	j, _ := c.Submit(JobSpec{Name: "runaway", Nodes: 1, Walltime: 3, Duration: 100})
	if err := c.RunUntilDone(50); err != nil {
		t.Fatal(err)
	}
	if j.State != Failed || !strings.Contains(j.Reason, "walltime") {
		t.Errorf("job = %v (%s), want walltime kill", j.State, j.Reason)
	}
	if _, err := c.Collect(j); err == nil {
		t.Error("collecting a failed job should error")
	}
	if c.FreeNodes() != 1 {
		t.Error("killed job must release its nodes")
	}
}

func TestBackfillStartsSmallJobsEarly(t *testing.T) {
	// Cluster of 4: a 2-node job runs; a 4-node job waits at the head;
	// a short 1-node job can backfill into the idle nodes without
	// delaying the head.
	mk := func(policy Policy) (int64, int64) {
		c := NewCluster(4, policy)
		c.Submit(JobSpec{Name: "running", Nodes: 2, Walltime: 10, Duration: 10})
		head, _ := c.Submit(JobSpec{Name: "head", Nodes: 4, Walltime: 10, Duration: 2})
		tiny, _ := c.Submit(JobSpec{Name: "tiny", Nodes: 1, Walltime: 5, Duration: 3})
		if err := c.RunUntilDone(200); err != nil {
			t.Fatal(err)
		}
		return tiny.StartTick, head.StartTick
	}
	fifoTiny, fifoHead := mk(FIFO)
	bfTiny, bfHead := mk(Backfill)
	if !(bfTiny < fifoTiny) {
		t.Errorf("backfill should start the tiny job earlier: fifo=%d backfill=%d",
			fifoTiny, bfTiny)
	}
	if bfHead > fifoHead {
		t.Errorf("backfilling must not delay the head: fifo=%d backfill=%d",
			fifoHead, bfHead)
	}
}

func TestBackfillRespectsShadow(t *testing.T) {
	// A long later job must NOT backfill when it would outlast the
	// head's shadow start.
	c := NewCluster(4, Backfill)
	c.Submit(JobSpec{Name: "running", Nodes: 2, Walltime: 5, Duration: 5})
	head, _ := c.Submit(JobSpec{Name: "head", Nodes: 4, Walltime: 10, Duration: 2})
	long, _ := c.Submit(JobSpec{Name: "long", Nodes: 1, Walltime: 50, Duration: 50})
	if long.State == Running {
		t.Fatal("long job must not backfill past the head's reservation")
	}
	c.RunUntilDone(500)
	if head.StartTick > 5 {
		t.Errorf("head delayed to %d by backfill", head.StartTick)
	}
}

// TestBatchWorkflow is experiment E12: generate the batch script with the
// codegen backend, submit it, watch it queue and run, collect the output —
// the full §6.3 workflow on the simulated cluster.
func TestBatchWorkflow(t *testing.T) {
	script := codegen.BatchScript("snap-mapreduce", 2, 8, 10)
	c := NewCluster(3, Backfill)
	// Occupy two nodes so the submission has to wait in the queue.
	blocker, _ := c.Submit(JobSpec{Name: "blocker", Nodes: 2, Walltime: 4, Duration: 4})
	j, err := c.SubmitScript(script, 3, func() string { return "avg 50 C" })
	if err != nil {
		t.Fatal(err)
	}
	if j.Spec.Name != "snap-mapreduce" || j.Spec.Nodes != 2 || j.Spec.Walltime != 10 {
		t.Errorf("parsed spec = %+v", j.Spec)
	}
	if j.State != Pending {
		t.Fatal("job should wait in the queue while nodes are busy")
	}
	if err := c.RunUntilDone(100); err != nil {
		t.Fatal(err)
	}
	if j.StartTick < blocker.EndTick {
		t.Error("job ran before nodes were free")
	}
	out, err := c.Collect(j)
	if err != nil || out != "avg 50 C" {
		t.Errorf("collect = %q, %v", out, err)
	}
}

func TestSubmitScriptErrors(t *testing.T) {
	c := NewCluster(2, FIFO)
	if _, err := c.SubmitScript("#!/bin/bash\necho hi\n", 1, nil); err == nil {
		t.Error("script without job name should error")
	}
	if _, err := c.SubmitScript("#SBATCH --job-name=x\n#SBATCH --nodes=many\n", 1, nil); err == nil {
		t.Error("bad nodes should error")
	}
	if _, err := c.SubmitScript("#SBATCH --job-name=x\n#SBATCH --time=later\n", 1, nil); err == nil {
		t.Error("bad time should error")
	}
	if _, err := c.SubmitScript("#SBATCH --job-name=x\n#SBATCH --time=a:b:c\n", 1, nil); err == nil {
		t.Error("non-numeric time should error")
	}
}

func TestStateAndPolicyNames(t *testing.T) {
	if Pending.String() != "PENDING" || Running.String() != "RUNNING" ||
		Completed.String() != "COMPLETED" || Failed.String() != "FAILED" ||
		State(9).String() != "STATE(9)" {
		t.Error("state names")
	}
	if FIFO.String() != "fifo" || Backfill.String() != "backfill" {
		t.Error("policy names")
	}
}

func TestClusterMinimumSize(t *testing.T) {
	c := NewCluster(0, FIFO)
	if c.FreeNodes() != 1 {
		t.Error("cluster should clamp to one node")
	}
}

func TestDependencies(t *testing.T) {
	c := NewCluster(4, FIFO)
	compile, _ := c.Submit(JobSpec{Name: "compile", Nodes: 1, Walltime: 5, Duration: 3,
		Run: func() string { return "binary" }})
	run, err := c.Submit(JobSpec{Name: "run", Nodes: 4, Walltime: 5, Duration: 2,
		After: []int{compile.ID}, Run: func() string { return "result" }})
	if err != nil {
		t.Fatal(err)
	}
	if run.State != Pending {
		t.Fatal("dependent job must wait even though nodes are free")
	}
	if err := c.RunUntilDone(100); err != nil {
		t.Fatal(err)
	}
	if run.StartTick < compile.EndTick {
		t.Errorf("dependent job started at %d before dependency ended at %d",
			run.StartTick, compile.EndTick)
	}
	out, err := c.Collect(run)
	if err != nil || out != "result" {
		t.Errorf("collect = %q, %v", out, err)
	}
}

func TestDependencyFailurePropagates(t *testing.T) {
	c := NewCluster(2, Backfill)
	bad, _ := c.Submit(JobSpec{Name: "bad", Nodes: 1, Walltime: 2, Duration: 100})
	dep, _ := c.Submit(JobSpec{Name: "dep", Nodes: 1, Walltime: 5, Duration: 1,
		After: []int{bad.ID}})
	if err := c.RunUntilDone(100); err != nil {
		t.Fatal(err)
	}
	if bad.State != Failed {
		t.Fatal("walltime kill expected")
	}
	if dep.State != Failed || !strings.Contains(dep.Reason, "dependency") {
		t.Errorf("dependent job = %v (%s), want dependency failure", dep.State, dep.Reason)
	}
}

func TestBackfillRespectsDependencies(t *testing.T) {
	// A small dependent job must not backfill before its dependency
	// completes, even when it would fit.
	c := NewCluster(4, Backfill)
	longDep, _ := c.Submit(JobSpec{Name: "long", Nodes: 2, Walltime: 10, Duration: 6})
	c.Submit(JobSpec{Name: "head", Nodes: 4, Walltime: 10, Duration: 2})
	tiny, _ := c.Submit(JobSpec{Name: "tiny", Nodes: 1, Walltime: 2, Duration: 1,
		After: []int{longDep.ID}})
	if tiny.State == Running {
		t.Fatal("dependent tiny job must not start yet")
	}
	if err := c.RunUntilDone(200); err != nil {
		t.Fatal(err)
	}
	if tiny.StartTick < longDep.EndTick {
		t.Errorf("tiny started at %d before its dependency ended at %d",
			tiny.StartTick, longDep.EndTick)
	}
}
