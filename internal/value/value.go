// Package value implements the Snap! data model used throughout pblocks.
//
// Snap! is dynamically typed. A slot in a block may hold a number, a piece
// of text, a boolean, "nothing" (an empty slot), a first-class list, or a
// first-class procedure (a "ring"). This package defines the Value
// interface shared by all of those, the concrete scalar and list types, and
// the structured-clone deep copy used when values cross a worker boundary
// (workers are share-nothing, exactly like HTML5 Web Workers).
//
// Rings are defined in package blocks (they close over block ASTs) but
// implement the Value interface declared here, so lists may contain rings,
// rings may return rings, and so on — first-class procedures per §2 of the
// paper.
package value

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind discriminates the dynamic type of a Value.
type Kind int

// The dynamic types of the Snap! data model.
const (
	KindNothing Kind = iota
	KindBool
	KindNumber
	KindText
	KindList
	KindRing   // first-class procedure; concrete type lives in package blocks
	KindOpaque // host values (worker handles, parallel jobs) stored in context scratch
)

// String returns the lower-case name of the kind, matching the names Snap!
// shows in its "type of" reporter.
func (k Kind) String() string {
	switch k {
	case KindNothing:
		return "nothing"
	case KindBool:
		return "boolean"
	case KindNumber:
		return "number"
	case KindText:
		return "text"
	case KindList:
		return "list"
	case KindRing:
		return "ring"
	case KindOpaque:
		return "opaque"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Value is any datum that can occupy a block input slot or a list cell.
type Value interface {
	// Kind reports the dynamic type.
	Kind() Kind
	// String renders the value the way Snap! would display it in a
	// speech balloon or watcher.
	String() string
	// Clone produces a structured clone: a deep copy sharing no mutable
	// state with the original. Rings clone to themselves (procedures are
	// immutable once reified); opaque host values refuse to clone and
	// instead return themselves, mirroring the browser's inability to
	// postMessage such objects.
	Clone() Value
}

// Nothing is the absent value: an empty input slot, or the result of a
// command block.
type Nothing struct{}

// Kind implements Value.
func (Nothing) Kind() Kind { return KindNothing }

// String implements Value; Snap! displays nothing as an empty string.
func (Nothing) String() string { return "" }

// Clone implements Value.
func (Nothing) Clone() Value { return Nothing{} }

// Bool is a Snap! boolean.
type Bool bool

// Kind implements Value.
func (Bool) Kind() Kind { return KindBool }

// String implements Value.
func (b Bool) String() string {
	if b {
		return "true"
	}
	return "false"
}

// Clone implements Value.
func (b Bool) Clone() Value { return b }

// Number is a Snap! number. Snap! (being JavaScript) has a single numeric
// type, an IEEE-754 double; so do we.
type Number float64

// Kind implements Value.
func (Number) Kind() Kind { return KindNumber }

// String renders integers without a decimal point, as Snap! does.
func (n Number) String() string {
	f := float64(n)
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// Clone implements Value.
func (n Number) Clone() Value { return n }

// IsInt reports whether the number holds an exact integer.
func (n Number) IsInt() bool {
	f := float64(n)
	return f == math.Trunc(f) && !math.IsInf(f, 0)
}

// Text is a Snap! text string.
type Text string

// Kind implements Value.
func (Text) Kind() Kind { return KindText }

// String implements Value.
func (t Text) String() string { return string(t) }

// Clone implements Value.
func (t Text) Clone() Value { return t }

// Opaque wraps a host Go value (for example a parallel job handle) so it can
// be stashed in a context's input scratch, the way Listing 2 of the paper
// stores the Parallel object in this.context.inputs[3]. Opaque values are
// not cloneable across workers and not renderable.
type Opaque struct {
	// Tag names what the payload is, for diagnostics.
	Tag string
	// Payload is the host value.
	Payload any
}

// Kind implements Value.
func (*Opaque) Kind() Kind { return KindOpaque }

// String implements Value.
func (o *Opaque) String() string { return "<" + o.Tag + ">" }

// Clone implements Value. Opaque handles are host-side and cannot be deep
// copied; Clone returns the same handle.
func (o *Opaque) Clone() Value { return o }

// List is a first-class Snap! list. Lists have reference semantics: two
// variables may hold the same list, and mutation through one is visible
// through the other — exactly like Snap! (and unlike Scratch, which has no
// first-class lists at all).
type List struct {
	items []Value
}

// NewList builds a list holding the given items. The slice is copied, the
// items are not (reference semantics).
func NewList(items ...Value) *List {
	l := &List{items: make([]Value, len(items))}
	copy(l.items, items)
	return l
}

// NewListCap builds an empty list with capacity for n items.
func NewListCap(n int) *List { return &List{items: make([]Value, 0, n)} }

// AdoptSlice wraps an existing slice as a List without copying. The list
// takes ownership: the caller must not retain or reuse the slice (or any
// aliasing sub-slice) afterwards. Engine code uses it to carve many small
// result lists out of one backing allocation.
func AdoptSlice(items []Value) *List { return &List{items: items} }

// FromFloats builds a list of Numbers.
func FromFloats(xs []float64) *List {
	l := &List{items: make([]Value, len(xs))}
	for i, x := range xs {
		l.items[i] = Num(x)
	}
	return l
}

// FromStrings builds a list of Texts.
func FromStrings(ss []string) *List {
	l := &List{items: make([]Value, len(ss))}
	for i, s := range ss {
		l.items[i] = Str(s)
	}
	return l
}

// FromInts builds a list of Numbers from ints.
func FromInts(xs []int) *List {
	l := &List{items: make([]Value, len(xs))}
	for i, x := range xs {
		l.items[i] = NumInt(x)
	}
	return l
}

// Range builds the list (from, from+step, ..., to) inclusive, Snap!'s
// "numbers from _ to _" reporter generalized with a step.
func Range(from, to, step float64) *List {
	if step == 0 {
		step = 1
	}
	l := &List{}
	if step > 0 {
		for x := from; x <= to; x += step {
			l.items = append(l.items, Num(x))
		}
	} else {
		for x := from; x >= to; x += step {
			l.items = append(l.items, Num(x))
		}
	}
	return l
}

// Kind implements Value.
func (*List) Kind() Kind { return KindList }

// String renders the list the way a Snap! watcher does: items separated by
// spaces inside brackets; nested lists nest. Programs can legally build
// self-referential lists (add a list to itself), so rendering tracks the
// lists on the current branch and prints the back-reference as [...]
// instead of recursing forever.
func (l *List) String() string {
	var b strings.Builder
	l.render(&b, nil)
	return b.String()
}

// render writes l to b. path holds the lists currently being rendered on
// this branch; it stays nil (no allocation) until the first nested list.
func (l *List) render(b *strings.Builder, path map[*List]bool) {
	if path[l] {
		b.WriteString("[...]")
		return
	}
	b.WriteByte('[')
	for i, it := range l.items {
		if i > 0 {
			b.WriteByte(' ')
		}
		if it == nil {
			continue
		}
		if sub, ok := it.(*List); ok {
			if path == nil {
				path = make(map[*List]bool, 4)
			}
			path[l] = true
			sub.render(b, path)
			continue
		}
		b.WriteString(it.String())
	}
	b.WriteByte(']')
	delete(path, l)
}

// Clone implements Value with a structured clone: a deep copy of the list
// spine and, recursively, of every mutable item. Immutable scalar items are
// shared between original and clone (see CloneValue); only containers are
// copied, which preserves the share-nothing semantics while skipping the
// re-boxing allocation per scalar element. Like the structured clone it is
// named for, cycles and aliasing among nested lists are preserved: the
// clone of a list that contains itself contains its own clone.
func (l *List) Clone() Value { return l.cloneWith(nil) }

// cloneWith maps already-cloned lists to their clones; it stays nil (no
// allocation) until the first nested list.
func (l *List) cloneWith(memo map[*List]*List) Value {
	if c, ok := memo[l]; ok {
		return c
	}
	c := &List{items: make([]Value, len(l.items))}
	if memo != nil {
		memo[l] = c
	}
	for i, it := range l.items {
		if sub, ok := it.(*List); ok {
			if memo == nil {
				memo = make(map[*List]*List, 4)
				memo[l] = c
			}
			c.items[i] = sub.cloneWith(memo)
			continue
		}
		c.items[i] = CloneValue(it)
	}
	return c
}

// Len reports the number of items.
func (l *List) Len() int { return len(l.items) }

// Item returns the 1-based item i, matching Snap!'s 1-based "item _ of _".
// It returns an error for out-of-range indices, like Snap!'s red error halo.
func (l *List) Item(i int) (Value, error) {
	if i < 1 || i > len(l.items) {
		return nil, fmt.Errorf("list index %d out of range [1..%d]", i, len(l.items))
	}
	v := l.items[i-1]
	if v == nil {
		return Nothing{}, nil
	}
	return v, nil
}

// MustItem is Item for indices the caller has already bounds-checked;
// it panics on a bad index.
func (l *List) MustItem(i int) Value {
	v, err := l.Item(i)
	if err != nil {
		panic(err)
	}
	return v
}

// SetItem replaces the 1-based item i.
func (l *List) SetItem(i int, v Value) error {
	if i < 1 || i > len(l.items) {
		return fmt.Errorf("list index %d out of range [1..%d]", i, len(l.items))
	}
	l.items[i-1] = v
	return nil
}

// Add appends v to the end of the list (Snap!'s "add _ to _").
func (l *List) Add(v Value) { l.items = append(l.items, v) }

// InsertAt inserts v so it becomes the 1-based item i. i may be Len()+1,
// which appends.
func (l *List) InsertAt(i int, v Value) error {
	if i < 1 || i > len(l.items)+1 {
		return fmt.Errorf("list insert index %d out of range [1..%d]", i, len(l.items)+1)
	}
	l.items = append(l.items, nil)
	copy(l.items[i:], l.items[i-1:])
	l.items[i-1] = v
	return nil
}

// DeleteAt removes the 1-based item i.
func (l *List) DeleteAt(i int) error {
	if i < 1 || i > len(l.items) {
		return fmt.Errorf("list delete index %d out of range [1..%d]", i, len(l.items))
	}
	copy(l.items[i-1:], l.items[i:])
	l.items = l.items[:len(l.items)-1]
	return nil
}

// Clear removes all items.
func (l *List) Clear() { l.items = l.items[:0] }

// Contains reports whether the list contains an item equal (per Equal) to v.
func (l *List) Contains(v Value) bool {
	for _, it := range l.items {
		if Equal(it, v) {
			return true
		}
	}
	return false
}

// IndexOf returns the 1-based index of the first item equal to v, or 0.
func (l *List) IndexOf(v Value) int {
	for i, it := range l.items {
		if Equal(it, v) {
			return i + 1
		}
	}
	return 0
}

// Items returns the backing slice. Callers must treat it as read-only; it
// is exposed for iteration without per-item bounds checks.
func (l *List) Items() []Value { return l.items }

// Append appends all items of other (by reference) to l.
func (l *List) Append(other *List) {
	l.items = append(l.items, other.items...)
}

// Slice returns a new list holding items from..to inclusive, 1-based.
func (l *List) Slice(from, to int) (*List, error) {
	if from < 1 {
		from = 1
	}
	if to > len(l.items) {
		to = len(l.items)
	}
	if from > to {
		return NewList(), nil
	}
	out := &List{items: make([]Value, to-from+1)}
	copy(out.items, l.items[from-1:to])
	return out, nil
}

// Floats converts a list of numbers (or numeric text) to a float slice.
func (l *List) Floats() ([]float64, error) {
	out := make([]float64, len(l.items))
	for i, it := range l.items {
		n, err := ToNumber(it)
		if err != nil {
			return nil, fmt.Errorf("item %d: %w", i+1, err)
		}
		out[i] = float64(n)
	}
	return out, nil
}

// Strings converts every item to its display string.
func (l *List) Strings() []string {
	out := make([]string, len(l.items))
	for i, it := range l.items {
		if it == nil {
			continue
		}
		out[i] = it.String()
	}
	return out
}
