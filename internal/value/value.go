// Package value implements the Snap! data model used throughout pblocks.
//
// Snap! is dynamically typed. A slot in a block may hold a number, a piece
// of text, a boolean, "nothing" (an empty slot), a first-class list, or a
// first-class procedure (a "ring"). This package defines the Value
// interface shared by all of those, the concrete scalar and list types, and
// the structured-clone deep copy used when values cross a worker boundary
// (workers are share-nothing, exactly like HTML5 Web Workers).
//
// Rings are defined in package blocks (they close over block ASTs) but
// implement the Value interface declared here, so lists may contain rings,
// rings may return rings, and so on — first-class procedures per §2 of the
// paper.
package value

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/obs"
)

// Kind discriminates the dynamic type of a Value.
type Kind int

// The dynamic types of the Snap! data model.
const (
	KindNothing Kind = iota
	KindBool
	KindNumber
	KindText
	KindList
	KindRing   // first-class procedure; concrete type lives in package blocks
	KindOpaque // host values (worker handles, parallel jobs) stored in context scratch
)

// String returns the lower-case name of the kind, matching the names Snap!
// shows in its "type of" reporter.
func (k Kind) String() string {
	switch k {
	case KindNothing:
		return "nothing"
	case KindBool:
		return "boolean"
	case KindNumber:
		return "number"
	case KindText:
		return "text"
	case KindList:
		return "list"
	case KindRing:
		return "ring"
	case KindOpaque:
		return "opaque"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Value is any datum that can occupy a block input slot or a list cell.
type Value interface {
	// Kind reports the dynamic type.
	Kind() Kind
	// String renders the value the way Snap! would display it in a
	// speech balloon or watcher.
	String() string
	// Clone produces a structured clone: a deep copy sharing no mutable
	// state with the original. Rings clone to themselves (procedures are
	// immutable once reified); opaque host values refuse to clone and
	// instead return themselves, mirroring the browser's inability to
	// postMessage such objects.
	Clone() Value
}

// Nothing is the absent value: an empty input slot, or the result of a
// command block.
type Nothing struct{}

// Kind implements Value.
func (Nothing) Kind() Kind { return KindNothing }

// String implements Value; Snap! displays nothing as an empty string.
func (Nothing) String() string { return "" }

// Clone implements Value.
func (Nothing) Clone() Value { return Nothing{} }

// Bool is a Snap! boolean.
type Bool bool

// Kind implements Value.
func (Bool) Kind() Kind { return KindBool }

// String implements Value.
func (b Bool) String() string {
	if b {
		return "true"
	}
	return "false"
}

// Clone implements Value.
func (b Bool) Clone() Value { return b }

// Number is a Snap! number. Snap! (being JavaScript) has a single numeric
// type, an IEEE-754 double; so do we.
type Number float64

// Kind implements Value.
func (Number) Kind() Kind { return KindNumber }

// String renders integers without a decimal point, as Snap! does.
func (n Number) String() string {
	f := float64(n)
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// Clone implements Value.
func (n Number) Clone() Value { return n }

// IsInt reports whether the number holds an exact integer.
func (n Number) IsInt() bool {
	f := float64(n)
	return f == math.Trunc(f) && !math.IsInf(f, 0)
}

// Text is a Snap! text string.
type Text string

// Kind implements Value.
func (Text) Kind() Kind { return KindText }

// String implements Value.
func (t Text) String() string { return string(t) }

// Clone implements Value.
func (t Text) Clone() Value { return t }

// Opaque wraps a host Go value (for example a parallel job handle) so it can
// be stashed in a context's input scratch, the way Listing 2 of the paper
// stores the Parallel object in this.context.inputs[3]. Opaque values are
// not cloneable across workers and not renderable.
type Opaque struct {
	// Tag names what the payload is, for diagnostics.
	Tag string
	// Payload is the host value.
	Payload any
}

// Kind implements Value.
func (*Opaque) Kind() Kind { return KindOpaque }

// String implements Value.
func (o *Opaque) String() string { return "<" + o.Tag + ">" }

// Clone implements Value. Opaque handles are host-side and cannot be deep
// copied; Clone returns the same handle.
func (o *Opaque) Clone() Value { return o }

// List is a first-class Snap! list. Lists have reference semantics: two
// variables may hold the same list, and mutation through one is visible
// through the other — exactly like Snap! (and unlike Scratch, which has no
// first-class lists at all).
//
// Representation. A list is either boxed (items, a []Value — the general
// case) or columnar (nums or strs, a raw []float64 or []string column for
// homogeneous numeric/text lists — the struct-of-arrays backing that lets
// the compiled kernels and the MapReduce engine iterate contiguous arrays
// instead of chasing one heap box per element). Exactly one backing is
// authoritative: nums, else strs, else items. Columnar lists box elements
// lazily through the scalar interner on Item/MustItem, and memoize a full
// boxed view for Items(); any mutation that fits the column (storing a
// Number into a numeric column) updates the column in place, while a
// non-conforming mutation upgrades the list to the boxed representation
// first, so program-visible semantics are identical in every tier.
type List struct {
	items []Value
	nums  []float64
	strs  []string
	// boxed memoizes the []Value view of a column so repeated Items()
	// iteration of the same list boxes each element once, not per call.
	// It is dropped on every mutation. The atomic pointer makes
	// concurrent read-only materialization safe: cached projects share
	// parsed list literals across sessions, and two sessions may demand
	// the boxed view of the same literal at the same time.
	boxed atomic.Pointer[[]Value]
}

// countColumnar records a columnar list construction in the engine metrics.
func countColumnar() {
	if obs.Enabled() {
		obs.ListColumnarLists.Inc()
	}
}

// adoptFloats wraps xs as a numeric-column list, taking ownership of xs.
func adoptFloats(xs []float64) *List {
	if xs == nil {
		xs = []float64{}
	}
	countColumnar()
	return &List{nums: xs}
}

// adoptStrings wraps ss as a text-column list, taking ownership of ss.
func adoptStrings(ss []string) *List {
	if ss == nil {
		ss = []string{}
	}
	countColumnar()
	return &List{strs: ss}
}

// AdoptFloats wraps an existing float slice as a numeric-column list
// without copying. The list takes ownership: the caller must not retain or
// reuse the slice afterwards. Streaming ingestion uses it to hand a parsed
// column straight to the engine.
func AdoptFloats(xs []float64) *List { return adoptFloats(xs) }

// AdoptStrings wraps an existing string slice as a text-column list
// without copying; the list takes ownership of the slice.
func AdoptStrings(ss []string) *List { return adoptStrings(ss) }

// NewList builds a list holding the given items. The slice is copied, the
// items are not (reference semantics).
func NewList(items ...Value) *List {
	l := &List{items: make([]Value, len(items))}
	copy(l.items, items)
	return l
}

// NewListCap builds an empty list with capacity for n items.
func NewListCap(n int) *List { return &List{items: make([]Value, 0, n)} }

// adoptColumnMin is the minimum length at which AdoptSlice pays the
// homogeneity scan; short lists stay boxed, where the column bookkeeping
// would cost more than it saves.
const adoptColumnMin = 32

// AdoptSlice wraps an existing slice as a List without copying. The list
// takes ownership: the caller must not retain or reuse the slice (or any
// aliasing sub-slice) afterwards. Engine code uses it to carve many small
// result lists out of one backing allocation. Long homogeneous slices are
// converted to a column (the adopted slice is then discarded).
func AdoptSlice(items []Value) *List {
	if len(items) >= adoptColumnMin {
		if l := sniffColumn(items); l != nil {
			return l
		}
	}
	return &List{items: items}
}

// sniffColumn converts a homogeneous all-Number or all-Text slice to a
// columnar list, or returns nil. It bails on the first non-conforming
// element, so the common heterogeneous case costs one type assertion.
func sniffColumn(items []Value) *List {
	switch items[0].(type) {
	case Number:
		xs := make([]float64, len(items))
		for i, it := range items {
			n, ok := it.(Number)
			if !ok {
				return nil
			}
			xs[i] = float64(n)
		}
		return adoptFloats(xs)
	case Text:
		ss := make([]string, len(items))
		for i, it := range items {
			s, ok := it.(Text)
			if !ok {
				return nil
			}
			ss[i] = string(s)
		}
		return adoptStrings(ss)
	}
	return nil
}

// FromFloats builds a numeric-column list of Numbers.
func FromFloats(xs []float64) *List {
	return adoptFloats(append([]float64(nil), xs...))
}

// FromStrings builds a text-column list of Texts.
func FromStrings(ss []string) *List {
	return adoptStrings(append([]string(nil), ss...))
}

// FromInts builds a numeric-column list of Numbers from ints.
func FromInts(xs []int) *List {
	col := make([]float64, len(xs))
	for i, x := range xs {
		col[i] = float64(x)
	}
	return adoptFloats(col)
}

// Range builds the list (from, from+step, ..., to) inclusive, Snap!'s
// "numbers from _ to _" reporter generalized with a step. Non-finite
// bounds or step yield an empty list; the interpreter tiers reject them
// with an error before calling Range (see interp.CheckNumbersBounds), so
// the empty list is only observable from host Go code.
func Range(from, to, step float64) *List {
	if step == 0 {
		step = 1
	}
	if !isFinite(from) || !isFinite(to) || !isFinite(step) {
		return adoptFloats(nil)
	}
	var xs []float64
	if n := math.Abs(to-from)/math.Abs(step) + 1; n < 1<<20 {
		xs = make([]float64, 0, int(n))
	}
	if step > 0 {
		for x := from; x <= to; x += step {
			xs = append(xs, x)
		}
	} else {
		for x := from; x >= to; x += step {
			xs = append(xs, x)
		}
	}
	return adoptFloats(xs)
}

// isFinite reports whether f is neither an infinity nor NaN.
func isFinite(f float64) bool { return !math.IsInf(f, 0) && !math.IsNaN(f) }

// Kind implements Value.
func (*List) Kind() Kind { return KindList }

// Columnar reports whether the list currently has a column backing.
func (l *List) Columnar() bool { return l.nums != nil || l.strs != nil }

// FloatsView returns the raw numeric column and true when the list is
// number-columnar. The slice is the live backing: callers must treat it as
// read-only and must not hold it across mutations of the list. Engine fast
// paths use it to iterate without boxing.
func (l *List) FloatsView() ([]float64, bool) { return l.nums, l.nums != nil }

// StringsView returns the raw text column and true when the list is
// text-columnar, under the same read-only contract as FloatsView.
func (l *List) StringsView() ([]string, bool) { return l.strs, l.strs != nil }

// at returns the 0-based element, boxing columnar elements through the
// interner. Boxed elements may be nil (an empty slot); columnar ones never
// are.
func (l *List) at(i int) Value {
	if l.nums != nil {
		return Num(l.nums[i])
	}
	if l.strs != nil {
		return Str(l.strs[i])
	}
	return l.items[i]
}

// view materializes (and memoizes) the boxed []Value view of a column.
// Pure read: safe for concurrent callers; a lost race materializes twice
// and each caller gets a consistent snapshot.
func (l *List) view() []Value {
	if p := l.boxed.Load(); p != nil {
		return *p
	}
	n := l.Len()
	vs := make([]Value, n)
	for i := range vs {
		vs[i] = l.at(i)
	}
	l.boxed.Store(&vs)
	return vs
}

// upgrade switches a columnar list to the boxed representation, reusing
// the memoized view as the mutable backing when one exists. Only mutation
// paths call it, so the single-writer assumption of List mutation holds.
func (l *List) upgrade() {
	vs := l.view()
	l.items, l.nums, l.strs = vs, nil, nil
	l.boxed.Store(nil)
	if obs.Enabled() {
		obs.ListColumnarUpgrades.Inc()
	}
}

// String renders the list the way a Snap! watcher does: items separated by
// spaces inside brackets; nested lists nest. Programs can legally build
// self-referential lists (add a list to itself), so rendering tracks the
// lists on the current branch and prints the back-reference as [...]
// instead of recursing forever.
func (l *List) String() string {
	var b strings.Builder
	l.render(&b, nil)
	return b.String()
}

// render writes l to b. path holds the lists currently being rendered on
// this branch; it stays nil (no allocation) until the first nested list.
// Columns hold only scalars, so they render directly.
func (l *List) render(b *strings.Builder, path map[*List]bool) {
	if path[l] {
		b.WriteString("[...]")
		return
	}
	if l.nums != nil {
		b.WriteByte('[')
		for i, x := range l.nums {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(Number(x).String())
		}
		b.WriteByte(']')
		return
	}
	if l.strs != nil {
		b.WriteByte('[')
		for i, s := range l.strs {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(s)
		}
		b.WriteByte(']')
		return
	}
	b.WriteByte('[')
	for i, it := range l.items {
		if i > 0 {
			b.WriteByte(' ')
		}
		if it == nil {
			continue
		}
		if sub, ok := it.(*List); ok {
			if path == nil {
				path = make(map[*List]bool, 4)
			}
			path[l] = true
			sub.render(b, path)
			continue
		}
		b.WriteString(it.String())
	}
	b.WriteByte(']')
	delete(path, l)
}

// Clone implements Value with a structured clone: a deep copy of the list
// spine and, recursively, of every mutable item. Immutable scalar items are
// shared between original and clone (see CloneValue); only containers are
// copied, which preserves the share-nothing semantics while skipping the
// re-boxing allocation per scalar element. Like the structured clone it is
// named for, cycles and aliasing among nested lists are preserved: the
// clone of a list that contains itself contains its own clone. Columnar
// lists clone by copying the column — no per-element work at all.
func (l *List) Clone() Value { return l.cloneWith(nil) }

// cloneWith maps already-cloned lists to their clones; it stays nil (no
// allocation) until the first nested list.
func (l *List) cloneWith(memo map[*List]*List) Value {
	if c, ok := memo[l]; ok {
		return c
	}
	if l.nums != nil {
		c := adoptFloats(append([]float64(nil), l.nums...))
		if memo != nil {
			memo[l] = c
		}
		return c
	}
	if l.strs != nil {
		c := adoptStrings(append([]string(nil), l.strs...))
		if memo != nil {
			memo[l] = c
		}
		return c
	}
	c := &List{items: make([]Value, len(l.items))}
	if memo != nil {
		memo[l] = c
	}
	for i, it := range l.items {
		if sub, ok := it.(*List); ok {
			if memo == nil {
				memo = make(map[*List]*List, 4)
				memo[l] = c
			}
			c.items[i] = sub.cloneWith(memo)
			continue
		}
		c.items[i] = CloneValue(it)
	}
	return c
}

// Len reports the number of items.
func (l *List) Len() int {
	if l.nums != nil {
		return len(l.nums)
	}
	if l.strs != nil {
		return len(l.strs)
	}
	return len(l.items)
}

// Item returns the 1-based item i, matching Snap!'s 1-based "item _ of _".
// It returns an error for out-of-range indices, like Snap!'s red error halo.
func (l *List) Item(i int) (Value, error) {
	n := l.Len()
	if i < 1 || i > n {
		return nil, fmt.Errorf("list index %d out of range [1..%d]", i, n)
	}
	v := l.at(i - 1)
	if v == nil {
		return Nothing{}, nil
	}
	return v, nil
}

// MustItem is Item for indices the caller has already bounds-checked;
// it panics on a bad index.
func (l *List) MustItem(i int) Value {
	v, err := l.Item(i)
	if err != nil {
		panic(err)
	}
	return v
}

// SetItem replaces the 1-based item i. Storing a conforming scalar into a
// column writes the column in place; anything else upgrades to boxed first.
func (l *List) SetItem(i int, v Value) error {
	n := l.Len()
	if i < 1 || i > n {
		return fmt.Errorf("list index %d out of range [1..%d]", i, n)
	}
	if l.nums != nil {
		if x, ok := v.(Number); ok {
			l.nums[i-1] = float64(x)
			l.boxed.Store(nil)
			return nil
		}
		l.upgrade()
	} else if l.strs != nil {
		if s, ok := v.(Text); ok {
			l.strs[i-1] = string(s)
			l.boxed.Store(nil)
			return nil
		}
		l.upgrade()
	}
	l.items[i-1] = v
	return nil
}

// Add appends v to the end of the list (Snap!'s "add _ to _").
func (l *List) Add(v Value) {
	if l.nums != nil {
		if x, ok := v.(Number); ok {
			l.nums = append(l.nums, float64(x))
			l.boxed.Store(nil)
			return
		}
		l.upgrade()
	} else if l.strs != nil {
		if s, ok := v.(Text); ok {
			l.strs = append(l.strs, string(s))
			l.boxed.Store(nil)
			return
		}
		l.upgrade()
	}
	l.items = append(l.items, v)
}

// InsertAt inserts v so it becomes the 1-based item i. i may be Len()+1,
// which appends.
func (l *List) InsertAt(i int, v Value) error {
	n := l.Len()
	if i < 1 || i > n+1 {
		return fmt.Errorf("list insert index %d out of range [1..%d]", i, n+1)
	}
	if l.nums != nil {
		if x, ok := v.(Number); ok {
			l.nums = append(l.nums, 0)
			copy(l.nums[i:], l.nums[i-1:])
			l.nums[i-1] = float64(x)
			l.boxed.Store(nil)
			return nil
		}
		l.upgrade()
	} else if l.strs != nil {
		if s, ok := v.(Text); ok {
			l.strs = append(l.strs, "")
			copy(l.strs[i:], l.strs[i-1:])
			l.strs[i-1] = string(s)
			l.boxed.Store(nil)
			return nil
		}
		l.upgrade()
	}
	l.items = append(l.items, nil)
	copy(l.items[i:], l.items[i-1:])
	l.items[i-1] = v
	return nil
}

// DeleteAt removes the 1-based item i.
func (l *List) DeleteAt(i int) error {
	n := l.Len()
	if i < 1 || i > n {
		return fmt.Errorf("list delete index %d out of range [1..%d]", i, n)
	}
	switch {
	case l.nums != nil:
		copy(l.nums[i-1:], l.nums[i:])
		l.nums = l.nums[:n-1]
		l.boxed.Store(nil)
	case l.strs != nil:
		copy(l.strs[i-1:], l.strs[i:])
		l.strs = l.strs[:n-1]
		l.boxed.Store(nil)
	default:
		copy(l.items[i-1:], l.items[i:])
		l.items = l.items[:n-1]
	}
	return nil
}

// Clear removes all items, keeping the current representation.
func (l *List) Clear() {
	switch {
	case l.nums != nil:
		l.nums = l.nums[:0]
		l.boxed.Store(nil)
	case l.strs != nil:
		l.strs = l.strs[:0]
		l.boxed.Store(nil)
	default:
		l.items = l.items[:0]
	}
}

// Contains reports whether the list contains an item equal (per Equal) to v.
func (l *List) Contains(v Value) bool { return l.IndexOf(v) != 0 }

// IndexOf returns the 1-based index of the first item equal to v, or 0.
// Numeric columns compare in float space when v coerces to a number — the
// exact comparison Equal would perform — and fall back to boxed Equal
// otherwise.
func (l *List) IndexOf(v Value) int {
	if l.nums != nil {
		if n, err := ToNumber(v); err == nil {
			f := float64(n)
			for i, x := range l.nums {
				if x == f {
					return i + 1
				}
			}
			return 0
		}
		for i := range l.nums {
			if Equal(Num(l.nums[i]), v) {
				return i + 1
			}
		}
		return 0
	}
	if l.strs != nil {
		for i := range l.strs {
			if Equal(Str(l.strs[i]), v) {
				return i + 1
			}
		}
		return 0
	}
	for i, it := range l.items {
		if Equal(it, v) {
			return i + 1
		}
	}
	return 0
}

// Items returns the boxed view of the list for iteration without per-item
// bounds checks. Callers must treat it as read-only: for boxed lists it is
// the live backing slice (writes through it would corrupt shared cached
// data), and for columnar lists it is a memoized snapshot that mutation
// invalidates, so it must also not be held across mutations.
func (l *List) Items() []Value {
	if l.nums == nil && l.strs == nil {
		return l.items
	}
	return l.view()
}

// Append appends all items of other (by reference) to l. Matching columns
// concatenate in column space.
func (l *List) Append(other *List) {
	switch {
	case l.nums != nil && other.nums != nil:
		l.nums = append(l.nums, other.nums...)
		l.boxed.Store(nil)
	case l.strs != nil && other.strs != nil:
		l.strs = append(l.strs, other.strs...)
		l.boxed.Store(nil)
	default:
		if l.Columnar() {
			l.upgrade()
		}
		l.items = append(l.items, other.Items()...)
	}
}

// Slice returns a new list holding items from..to inclusive, 1-based.
// Slicing a columnar list yields a columnar list with a copied column.
func (l *List) Slice(from, to int) (*List, error) {
	n := l.Len()
	if from < 1 {
		from = 1
	}
	if to > n {
		to = n
	}
	if from > to {
		return NewList(), nil
	}
	switch {
	case l.nums != nil:
		return adoptFloats(append([]float64(nil), l.nums[from-1:to]...)), nil
	case l.strs != nil:
		return adoptStrings(append([]string(nil), l.strs[from-1:to]...)), nil
	}
	out := &List{items: make([]Value, to-from+1)}
	copy(out.items, l.items[from-1:to])
	return out, nil
}

// Floats converts a list of numbers (or numeric text) to a float slice.
// The returned slice is freshly allocated and owned by the caller.
func (l *List) Floats() ([]float64, error) {
	if l.nums != nil {
		return append([]float64(nil), l.nums...), nil
	}
	if l.strs != nil {
		out := make([]float64, len(l.strs))
		for i, s := range l.strs {
			n, err := ToNumber(Text(s))
			if err != nil {
				return nil, fmt.Errorf("item %d: %w", i+1, err)
			}
			out[i] = float64(n)
		}
		return out, nil
	}
	out := make([]float64, len(l.items))
	for i, it := range l.items {
		n, err := ToNumber(it)
		if err != nil {
			return nil, fmt.Errorf("item %d: %w", i+1, err)
		}
		out[i] = float64(n)
	}
	return out, nil
}

// Strings converts every item to its display string. The returned slice is
// freshly allocated and owned by the caller.
func (l *List) Strings() []string {
	if l.strs != nil {
		return append([]string(nil), l.strs...)
	}
	if l.nums != nil {
		out := make([]string, len(l.nums))
		for i, x := range l.nums {
			out[i] = Number(x).String()
		}
		return out
	}
	out := make([]string, len(l.items))
	for i, it := range l.items {
		if it == nil {
			continue
		}
		out[i] = it.String()
	}
	return out
}
