package value

// Interning and clone elision: the allocation discipline of the hot path.
//
// Converting a Number or Text to the Value interface boxes it (one heap
// allocation for the data word). The interpreter and the worker pool do
// this for every block result and every value crossing a worker boundary,
// so the runtime pre-boxes the values that occur overwhelmingly often —
// small integers, the booleans, Nothing, and one-character strings — and
// hands out the shared boxes instead.
//
// Sharing boxes is sound because every scalar kind is immutable: Nothing,
// Bool, Number, and Text have no mutable state, so two holders of the same
// box can never observe each other. The same immutability argument powers
// CloneValue's elision: a structured clone only needs to copy values that
// can be mutated (lists, and lists inside lists); scalars can cross a
// worker boundary by reference without breaking the share-nothing model.
// See docs/PERFORMANCE.md for the invariants this relies on.

// Pre-boxed singletons for the zero-information values.
var (
	// TheNothing is the shared boxed Nothing.
	TheNothing Value = Nothing{}
	// True and False are the shared boxed booleans.
	True  Value = Bool(true)
	False Value = Bool(false)
)

// Small-integer interning range. Loop counters, list indices, character
// codes, and the constants of example programs land here; the range is
// deliberately wider above zero than below, like every VM's small-int
// cache.
const (
	internNumLo = -128
	internNumHi = 1024
)

var internedNums [internNumHi - internNumLo + 1]Value

// internedChars holds the 128 one-byte ASCII strings plus the empty
// string, the dominant products of letter-of and text-split blocks.
var (
	internedChars [128]Value
	emptyText     Value = Text("")
)

func init() {
	for i := range internedNums {
		internedNums[i] = Number(float64(i + internNumLo))
	}
	for i := range internedChars {
		internedChars[i] = Text(string(rune(i)))
	}
}

// Num boxes a float64 as a Value, returning the shared box for small
// integers. Use it anywhere a Number becomes a Value on a hot path.
func Num(f float64) Value {
	if i := int(f); float64(i) == f && i >= internNumLo && i <= internNumHi {
		return internedNums[i-internNumLo]
	}
	return Number(f)
}

// NumInt boxes an int as a Value through the small-integer cache.
func NumInt(i int) Value {
	if i >= internNumLo && i <= internNumHi {
		return internedNums[i-internNumLo]
	}
	return Number(float64(i))
}

// BoolVal returns the shared box for a bool.
func BoolVal(b bool) Value {
	if b {
		return True
	}
	return False
}

// Str boxes a string as a Value, returning the shared box for the empty
// string and single-byte ASCII strings.
func Str(s string) Value {
	switch len(s) {
	case 0:
		return emptyText
	case 1:
		if c := s[0]; c < 128 {
			return internedChars[c]
		}
	}
	return Text(s)
}

// CloneValue is the structured clone used at every worker boundary. It
// deep-copies mutable containers (lists) and elides the copy for immutable
// scalars, returning the same box: calling Clone() on a Number or Text
// value re-boxes it (an allocation), while returning the interface word
// unchanged is free and observably identical, because scalars cannot be
// mutated through any holder.
//
// Rings clone to themselves (procedures are immutable once reified) and
// opaque host values refuse to clone, both per the Value.Clone contract;
// CloneValue defers to Clone for any kind it does not recognize.
func CloneValue(v Value) Value {
	switch v.(type) {
	case nil:
		return TheNothing
	case Nothing, Bool, Number, Text:
		return v
	default:
		return v.Clone()
	}
}
