package value

import (
	"fmt"
	"math/rand"
	"testing"
)

// legacyClone is the pre-elision structured clone: a deep copy of every
// value, scalars included, exactly as Value.Clone behaved before scalar
// sharing. The differential tests below check that CloneValue is
// observably equivalent to it.
func legacyClone(v Value) Value {
	switch x := v.(type) {
	case nil:
		return Nothing{}
	case Nothing:
		return Nothing{}
	case Bool:
		return Bool(bool(x))
	case Number:
		return Number(float64(x))
	case Text:
		return Text(string(x))
	case *List:
		c := &List{items: make([]Value, len(x.items))}
		for i, it := range x.items {
			c.items[i] = legacyClone(it)
		}
		return c
	default:
		return v.Clone()
	}
}

// randomValue builds an arbitrary value tree of bounded depth.
func randomValue(rng *rand.Rand, depth int) Value {
	switch k := rng.Intn(6); {
	case k == 0:
		return Nothing{}
	case k == 1:
		return Bool(rng.Intn(2) == 0)
	case k == 2:
		return Number(float64(rng.Intn(4000) - 2000))
	case k == 3:
		return Number(rng.NormFloat64() * 1e6)
	case k == 4:
		return Text(fmt.Sprintf("s%d", rng.Intn(1000)))
	default:
		if depth <= 0 {
			return NumInt(rng.Intn(100))
		}
		n := rng.Intn(6)
		l := NewListCap(n)
		for i := 0; i < n; i++ {
			l.Add(randomValue(rng, depth-1))
		}
		return l
	}
}

// deepEqual compares two value trees structurally (Equal compares scalars
// loosely; here we want exact structural identity of the rendering).
func deepEqual(a, b Value) bool {
	la, aok := a.(*List)
	lb, bok := b.(*List)
	if aok != bok {
		return false
	}
	if aok {
		if la.Len() != lb.Len() {
			return false
		}
		for i := 1; i <= la.Len(); i++ {
			if !deepEqual(la.MustItem(i), lb.MustItem(i)) {
				return false
			}
		}
		return true
	}
	return a.Kind() == b.Kind() && a.String() == b.String()
}

// TestCloneDifferential checks, over many random value trees, that the
// eliding CloneValue and the legacy deep copy produce structurally
// identical results.
func TestCloneDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		v := randomValue(rng, 4)
		a := CloneValue(v)
		b := legacyClone(v)
		if !deepEqual(a, b) {
			t.Fatalf("trial %d: clones differ:\n eliding: %s\n legacy:  %s", trial, a, b)
		}
		if !deepEqual(a, v) {
			t.Fatalf("trial %d: clone differs from original", trial)
		}
	}
}

// TestCloneIsolation checks the share-nothing property the worker boundary
// depends on: after cloning, no mutation through the original is visible
// through the clone, at any nesting depth.
func TestCloneIsolation(t *testing.T) {
	inner := NewList(NumInt(1), NumInt(2))
	orig := NewList(NumInt(0), inner, Text("keep"))
	c := CloneValue(orig).(*List)

	// Mutate the original's spine and its nested list.
	orig.SetItem(1, Text("mutated"))
	orig.Add(Text("extra"))
	inner.SetItem(2, Text("mutated"))
	inner.Add(NumInt(99))

	if got := c.String(); got != "[0 [1 2] keep]" {
		t.Fatalf("clone observed mutation of original: %s", got)
	}

	// And the reverse: mutating the clone must not touch the original.
	c.MustItem(2).(*List).Add(Text("clone-side"))
	if got := orig.MustItem(2).String(); got != "[1 mutated 99]" {
		t.Fatalf("original observed mutation of clone: %s", got)
	}
}

// TestCloneScalarSharing documents the elision itself: scalar boxes may be
// shared between original and clone (that is the optimization), while list
// boxes must never be.
func TestCloneScalarSharing(t *testing.T) {
	l := NewList(NumInt(7), Text("hi"), Bool(true), Nothing{})
	c := CloneValue(l).(*List)
	if c == l {
		t.Fatal("list spine must be copied")
	}
	for i := 1; i <= l.Len(); i++ {
		if c.MustItem(i) != l.MustItem(i) {
			t.Errorf("item %d: scalar box not shared (elision regressed)", i)
		}
	}

	nested := NewList(NewList(NumInt(1)))
	nc := CloneValue(nested).(*List)
	if nc.MustItem(1) == nested.MustItem(1) {
		t.Fatal("nested list box must not be shared")
	}
}

// TestCloneNilItems pins the nil-item behavior of the old path: a nil cell
// clones to Nothing.
func TestCloneNilItems(t *testing.T) {
	l := &List{items: []Value{nil, NumInt(1)}}
	c := CloneValue(l).(*List)
	if _, ok := c.MustItem(1).(Nothing); !ok {
		t.Fatalf("nil item should clone to Nothing, got %T", c.MustItem(1))
	}
}
