package value

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKindStrings(t *testing.T) {
	cases := map[Kind]string{
		KindNothing: "nothing",
		KindBool:    "boolean",
		KindNumber:  "number",
		KindText:    "text",
		KindList:    "list",
		KindRing:    "ring",
		KindOpaque:  "opaque",
		Kind(99):    "kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestNumberString(t *testing.T) {
	cases := []struct {
		n    Number
		want string
	}{
		{0, "0"},
		{3, "3"},
		{-7, "-7"},
		{30, "30"},
		{3.5, "3.5"},
		{-0.25, "-0.25"},
		{1e20, "1e+20"},
	}
	for _, c := range cases {
		if got := c.n.String(); got != c.want {
			t.Errorf("Number(%v).String() = %q, want %q", float64(c.n), got, c.want)
		}
	}
}

func TestNumberIsInt(t *testing.T) {
	if !Number(4).IsInt() {
		t.Error("4 should be an int")
	}
	if Number(4.5).IsInt() {
		t.Error("4.5 should not be an int")
	}
	if Number(math.Inf(1)).IsInt() {
		t.Error("+Inf should not be an int")
	}
}

func TestBoolAndNothing(t *testing.T) {
	if Bool(true).String() != "true" || Bool(false).String() != "false" {
		t.Error("bool rendering wrong")
	}
	if (Nothing{}).String() != "" {
		t.Error("nothing should render empty")
	}
	if (Nothing{}).Kind() != KindNothing {
		t.Error("nothing kind wrong")
	}
}

func TestListBasics(t *testing.T) {
	l := NewList(Number(3), Number(7), Number(8))
	if l.Len() != 3 {
		t.Fatalf("Len = %d, want 3", l.Len())
	}
	v, err := l.Item(2)
	if err != nil || v.(Number) != 7 {
		t.Fatalf("Item(2) = %v, %v", v, err)
	}
	if _, err := l.Item(0); err == nil {
		t.Error("Item(0) should error")
	}
	if _, err := l.Item(4); err == nil {
		t.Error("Item(4) should error")
	}
	if l.String() != "[3 7 8]" {
		t.Errorf("String = %q", l.String())
	}
}

func TestListMutation(t *testing.T) {
	l := NewList()
	l.Add(Text("a"))
	l.Add(Text("c"))
	if err := l.InsertAt(2, Text("b")); err != nil {
		t.Fatal(err)
	}
	if l.String() != "[a b c]" {
		t.Fatalf("after insert: %q", l.String())
	}
	if err := l.DeleteAt(1); err != nil {
		t.Fatal(err)
	}
	if l.String() != "[b c]" {
		t.Fatalf("after delete: %q", l.String())
	}
	if err := l.SetItem(2, Text("z")); err != nil {
		t.Fatal(err)
	}
	if l.String() != "[b z]" {
		t.Fatalf("after set: %q", l.String())
	}
	if err := l.InsertAt(0, Text("x")); err == nil {
		t.Error("InsertAt(0) should error")
	}
	if err := l.DeleteAt(9); err == nil {
		t.Error("DeleteAt(9) should error")
	}
	if err := l.SetItem(9, Text("x")); err == nil {
		t.Error("SetItem(9) should error")
	}
	l.Clear()
	if l.Len() != 0 {
		t.Error("Clear left items")
	}
}

func TestListReferenceSemantics(t *testing.T) {
	a := NewList(Number(1))
	b := a // same list, two variables — Snap! reference semantics
	b.Add(Number(2))
	if a.Len() != 2 {
		t.Error("mutation through alias not visible")
	}
	c := a.Clone().(*List) // structured clone severs sharing
	c.Add(Number(3))
	if a.Len() != 2 {
		t.Error("clone still shares state with original")
	}
}

func TestCloneDeep(t *testing.T) {
	inner := NewList(Number(1))
	outer := NewList(inner, Text("x"))
	cl := outer.Clone().(*List)
	cl.MustItem(1).(*List).Add(Number(2))
	if inner.Len() != 1 {
		t.Error("clone shares nested list")
	}
}

func TestCloneNilItem(t *testing.T) {
	l := &List{items: []Value{nil}}
	cl := l.Clone().(*List)
	if _, ok := cl.MustItem(1).(Nothing); !ok {
		t.Error("nil item should clone to Nothing")
	}
}

func TestRange(t *testing.T) {
	if got := Range(1, 5, 1).String(); got != "[1 2 3 4 5]" {
		t.Errorf("Range(1,5,1) = %s", got)
	}
	if got := Range(5, 1, -2).String(); got != "[5 3 1]" {
		t.Errorf("Range(5,1,-2) = %s", got)
	}
	if got := Range(1, 3, 0).String(); got != "[1 2 3]" {
		t.Errorf("Range with 0 step should default to 1: %s", got)
	}
}

func TestSlice(t *testing.T) {
	l := FromInts([]int{1, 2, 3, 4, 5})
	s, err := l.Slice(2, 4)
	if err != nil || s.String() != "[2 3 4]" {
		t.Fatalf("Slice(2,4) = %v, %v", s, err)
	}
	s, _ = l.Slice(-3, 99)
	if s.Len() != 5 {
		t.Error("clamped slice should return whole list")
	}
	s, _ = l.Slice(4, 2)
	if s.Len() != 0 {
		t.Error("inverted slice should be empty")
	}
}

func TestContainsIndexOf(t *testing.T) {
	l := FromStrings([]string{"apple", "Banana"})
	if !l.Contains(Text("banana")) {
		t.Error("Contains should be case-insensitive like Snap! =")
	}
	if l.IndexOf(Text("APPLE")) != 1 {
		t.Error("IndexOf apple != 1")
	}
	if l.IndexOf(Text("pear")) != 0 {
		t.Error("IndexOf missing != 0")
	}
}

func TestFloatsStrings(t *testing.T) {
	l := NewList(Number(1.5), Text("2"), Bool(true))
	fs, err := l.Floats()
	if err != nil {
		t.Fatal(err)
	}
	if fs[0] != 1.5 || fs[1] != 2 || fs[2] != 1 {
		t.Errorf("Floats = %v", fs)
	}
	bad := NewList(Text("pear"))
	if _, err := bad.Floats(); err == nil {
		t.Error("Floats over text should error")
	}
	ss := l.Strings()
	if ss[0] != "1.5" || ss[1] != "2" || ss[2] != "true" {
		t.Errorf("Strings = %v", ss)
	}
}

func TestAppendLists(t *testing.T) {
	a := FromInts([]int{1, 2})
	b := FromInts([]int{3})
	a.Append(b)
	if a.String() != "[1 2 3]" {
		t.Errorf("Append = %s", a.String())
	}
}

func TestToNumber(t *testing.T) {
	cases := []struct {
		in   Value
		want float64
		ok   bool
	}{
		{Number(4), 4, true},
		{Text("3.5"), 3.5, true},
		{Text("  42 "), 42, true},
		{Text(""), 0, true},
		{Bool(true), 1, true},
		{Bool(false), 0, true},
		{Nothing{}, 0, true},
		{Text("pear"), 0, false},
		{NewList(), 0, false},
	}
	for _, c := range cases {
		n, err := ToNumber(c.in)
		if c.ok && (err != nil || float64(n) != c.want) {
			t.Errorf("ToNumber(%v) = %v, %v; want %v", c.in, n, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ToNumber(%v) should error", c.in)
		}
	}
	if _, err := ToNumber(nil); err != nil {
		t.Error("ToNumber(nil) should be 0")
	}
}

func TestToBool(t *testing.T) {
	if b, err := ToBool(Bool(true)); err != nil || !bool(b) {
		t.Error("ToBool(true) failed")
	}
	if b, err := ToBool(Text("TRUE")); err != nil || !bool(b) {
		t.Error(`ToBool("TRUE") failed`)
	}
	if b, err := ToBool(Text("false")); err != nil || bool(b) {
		t.Error(`ToBool("false") failed`)
	}
	if _, err := ToBool(Text("maybe")); err == nil {
		t.Error(`ToBool("maybe") should error`)
	}
	if _, err := ToBool(Number(1)); err == nil {
		t.Error("ToBool(1) should error (Snap! does not coerce numbers)")
	}
	if b, err := ToBool(nil); err != nil || bool(b) {
		t.Error("ToBool(nil) should be false")
	}
	if b, err := ToBool(Nothing{}); err != nil || bool(b) {
		t.Error("ToBool(Nothing) should be false")
	}
}

func TestToTextToListToInt(t *testing.T) {
	if ToText(Number(30)) != "30" {
		t.Error("ToText(30)")
	}
	if ToText(nil) != "" {
		t.Error("ToText(nil)")
	}
	l := ToList(Number(5))
	if l.Len() != 1 || l.MustItem(1).(Number) != 5 {
		t.Error("ToList(scalar) should wrap")
	}
	same := NewList(Number(1))
	if ToList(same) != same {
		t.Error("ToList(list) should pass through")
	}
	if ToList(nil).Len() != 0 || ToList(Nothing{}).Len() != 0 {
		t.Error("ToList(nothing) should be empty")
	}
	if n, err := ToInt(Number(7)); err != nil || n != 7 {
		t.Error("ToInt(7)")
	}
	if _, err := ToInt(Number(7.5)); err == nil {
		t.Error("ToInt(7.5) should error")
	}
	if _, err := ToInt(Text("x")); err == nil {
		t.Error("ToInt(text) should error")
	}
}

func TestEqualSemantics(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{Number(3), Text("3"), true},
		{Text("Hello"), Text("hello"), true},
		{Bool(true), Number(1), true},
		{Number(3), Number(4), false},
		{NewList(Number(1)), NewList(Number(1)), true},
		{NewList(Number(1)), NewList(Number(2)), false},
		{NewList(Number(1)), NewList(Number(1), Number(2)), false},
		{NewList(Number(1)), Number(1), false},
		{Nothing{}, Nothing{}, true},
		{nil, Nothing{}, true},
	}
	for _, c := range cases {
		if got := Equal(c.a, c.b); got != c.want {
			t.Errorf("Equal(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestEqualNestedLists(t *testing.T) {
	a := NewList(NewList(Number(1), Text("x")), Number(2))
	b := NewList(NewList(Number(1), Text("X")), Text("2"))
	if !Equal(a, b) {
		t.Error("deep equal with coercions failed")
	}
}

func TestLessGreater(t *testing.T) {
	lt, err := Less(Number(2), Number(10))
	if err != nil || !lt {
		t.Error("2 < 10")
	}
	lt, _ = Less(Text("2"), Number(10))
	if !lt {
		t.Error(`"2" < 10 should be numeric comparison`)
	}
	lt, _ = Less(Text("apple"), Text("Banana"))
	if !lt {
		t.Error("apple < Banana case-insensitively")
	}
	gt, _ := Greater(Number(10), Number(2))
	if !gt {
		t.Error("10 > 2")
	}
}

func TestOpaque(t *testing.T) {
	o := &Opaque{Tag: "job", Payload: 42}
	if o.Kind() != KindOpaque || o.String() != "<job>" {
		t.Error("opaque rendering")
	}
	if o.Clone() != Value(o) {
		t.Error("opaque must clone to itself")
	}
	if !Equal(o, o) {
		t.Error("opaque equal by identity")
	}
	if Equal(o, &Opaque{Tag: "job"}) {
		t.Error("distinct opaques must not be equal")
	}
}

// Property: structured clone is observationally equal to the original but
// shares no mutable state.
func TestPropertyCloneEqual(t *testing.T) {
	f := func(xs []float64, ss []string) bool {
		l := NewList()
		for _, x := range xs {
			if math.IsNaN(x) {
				x = 0
			}
			l.Add(Number(x))
		}
		sub := FromStrings(ss)
		l.Add(sub)
		c := l.Clone().(*List)
		if !Equal(l, c) {
			return false
		}
		// Mutating the clone's nested list must not affect the original.
		c.MustItem(c.Len()).(*List).Add(Text("mutant"))
		return sub.Len() == len(ss)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Equal is reflexive and symmetric over scalar values.
func TestPropertyEqualReflexiveSymmetric(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		va, vb := Number(a), Number(b)
		return Equal(va, va) && Equal(va, vb) == Equal(vb, va)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: InsertAt then DeleteAt at the same index is the identity.
func TestPropertyInsertDelete(t *testing.T) {
	f := func(xs []int, at uint8) bool {
		l := FromInts(xs)
		i := int(at)%(l.Len()+1) + 1
		before := l.String()
		if err := l.InsertAt(i, Text("probe")); err != nil {
			return false
		}
		if err := l.DeleteAt(i); err != nil {
			return false
		}
		return l.String() == before
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Range(1,n,1) has n items and item i equals i.
func TestPropertyRange(t *testing.T) {
	f := func(n uint8) bool {
		m := int(n%200) + 1
		l := Range(1, float64(m), 1)
		if l.Len() != m {
			return false
		}
		for i := 1; i <= m; i++ {
			if l.MustItem(i).(Number) != Number(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
