package value

import "testing"

func TestNumInterning(t *testing.T) {
	// Small integers come back as the same box every time.
	if Num(5) != Num(5) {
		t.Error("Num(5) not interned")
	}
	if NumInt(-128) != Num(-128) || NumInt(1024) != Num(1024) {
		t.Error("interning range endpoints disagree between Num and NumInt")
	}
	// Values outside the range or non-integral still box correctly.
	for _, f := range []float64{-129, 1025, 0.5, 1e18, -1e18} {
		v := Num(f)
		if n, ok := v.(Number); !ok || float64(n) != f {
			t.Errorf("Num(%g) = %v", f, v)
		}
	}
	// Interned boxes hold the right values.
	for _, f := range []float64{-128, -1, 0, 1, 42, 1024} {
		if n := Num(f).(Number); float64(n) != f {
			t.Errorf("Num(%g) holds %g", f, float64(n))
		}
	}
}

func TestStrInterning(t *testing.T) {
	if Str("") != Str("") {
		t.Error("empty string not interned")
	}
	if Str("a") != Str("a") {
		t.Error("single ASCII char not interned")
	}
	for _, s := range []string{"", "a", "Z", " ", "hello", "é", "日本"} {
		if got := Str(s).String(); got != s {
			t.Errorf("Str(%q).String() = %q", s, got)
		}
	}
}

func TestBoolAndNothingSingletons(t *testing.T) {
	if BoolVal(true) != True || BoolVal(false) != False {
		t.Error("BoolVal does not return the shared boxes")
	}
	if !IsNothing(TheNothing) {
		t.Error("TheNothing is not Nothing")
	}
	if CloneValue(nil) != TheNothing {
		t.Error("CloneValue(nil) should be TheNothing")
	}
}

func TestCloneValueScalarsFree(t *testing.T) {
	// The elision contract: cloning a scalar returns the identical box.
	for _, v := range []Value{NumInt(3), Str("x"), True, TheNothing, Number(2.5), Text("word")} {
		if CloneValue(v) != v {
			t.Errorf("CloneValue(%v) re-boxed a scalar", v)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		_ = CloneValue(True)
		_ = CloneValue(NumInt(7))
		_ = CloneValue(Str("q"))
	})
	if allocs != 0 {
		t.Errorf("scalar CloneValue allocates (%v allocs/run)", allocs)
	}
}
