package value

import "strings"

// Equal implements Snap!'s "=" block semantics: numeric comparison when both
// sides coerce to numbers, case-insensitive text comparison otherwise, and
// structural (deep) comparison for lists. Rings and opaque values compare
// by identity.
func Equal(a, b Value) bool {
	if a == nil {
		a = Nothing{}
	}
	if b == nil {
		b = Nothing{}
	}
	la, aIsList := a.(*List)
	lb, bIsList := b.(*List)
	if aIsList || bIsList {
		if !aIsList || !bIsList {
			return false
		}
		if la.Len() != lb.Len() {
			return false
		}
		for i := range la.items {
			if !Equal(la.items[i], lb.items[i]) {
				return false
			}
		}
		return true
	}
	// Numeric comparison when both sides are numeric (number, bool, or
	// numeric text) — Snap! treats "3" = 3 as true.
	na, errA := ToNumber(a)
	nb, errB := ToNumber(b)
	if errA == nil && errB == nil {
		return na == nb
	}
	if a.Kind() == KindRing || b.Kind() == KindRing ||
		a.Kind() == KindOpaque || b.Kind() == KindOpaque {
		return a == b
	}
	// Fall back to case-insensitive text comparison, as Snap! does.
	return strings.EqualFold(a.String(), b.String())
}

// Less implements Snap!'s "<" block: numeric when possible, otherwise
// case-insensitive lexicographic.
func Less(a, b Value) (bool, error) {
	na, errA := ToNumber(a)
	nb, errB := ToNumber(b)
	if errA == nil && errB == nil {
		return na < nb, nil
	}
	sa := strings.ToLower(a.String())
	sb := strings.ToLower(b.String())
	return sa < sb, nil
}

// Greater implements Snap!'s ">" block.
func Greater(a, b Value) (bool, error) {
	lt, err := Less(b, a)
	return lt, err
}
