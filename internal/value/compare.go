package value

import "strings"

// Equal implements Snap!'s "=" block semantics: numeric comparison when both
// sides coerce to numbers, case-insensitive text comparison otherwise, and
// structural (deep) comparison for lists. Rings and opaque values compare
// by identity. Self-referential lists compare coinductively: re-entering a
// pair already under comparison counts as equal, so two structurally
// identical cycles are equal and the comparison always terminates.
func Equal(a, b Value) bool { return equalWith(a, b, nil) }

// listPair is one in-flight list comparison, the cycle-detection key.
type listPair struct{ a, b *List }

// equalWith compares with seen tracking the list pairs on the current
// comparison branch; it stays nil (no allocation) until lists nest.
func equalWith(a, b Value, seen map[listPair]bool) bool {
	if a == nil {
		a = Nothing{}
	}
	if b == nil {
		b = Nothing{}
	}
	la, aIsList := a.(*List)
	lb, bIsList := b.(*List)
	if aIsList || bIsList {
		if !aIsList || !bIsList {
			return false
		}
		if la == lb {
			return true
		}
		if la.Len() != lb.Len() {
			return false
		}
		if seen[listPair{la, lb}] {
			return true
		}
		// Matching columns compare without boxing. Float equality is
		// exactly the numeric branch below (NaN != NaN included); equal
		// strings are always Equal (numerically when both parse,
		// case-insensitively otherwise), so only unequal strings fall
		// through to the per-item comparison.
		if la.nums != nil && lb.nums != nil {
			for i := range la.nums {
				if la.nums[i] != lb.nums[i] {
					return false
				}
			}
			return true
		}
		if la.strs != nil && lb.strs != nil {
			for i := range la.strs {
				if la.strs[i] == lb.strs[i] {
					continue
				}
				if !equalWith(Str(la.strs[i]), Str(lb.strs[i]), seen) {
					return false
				}
			}
			return true
		}
		for i, n := 0, la.Len(); i < n; i++ {
			ia, ib := la.at(i), lb.at(i)
			_, aSub := ia.(*List)
			_, bSub := ib.(*List)
			if aSub && bSub {
				if seen == nil {
					seen = make(map[listPair]bool, 4)
				}
				seen[listPair{la, lb}] = true
			}
			if !equalWith(ia, ib, seen) {
				return false
			}
		}
		delete(seen, listPair{la, lb})
		return true
	}
	// Numeric comparison when both sides are numeric (number, bool, or
	// numeric text) — Snap! treats "3" = 3 as true.
	na, errA := ToNumber(a)
	nb, errB := ToNumber(b)
	if errA == nil && errB == nil {
		return na == nb
	}
	if a.Kind() == KindRing || b.Kind() == KindRing ||
		a.Kind() == KindOpaque || b.Kind() == KindOpaque {
		return a == b
	}
	// Fall back to case-insensitive text comparison, as Snap! does.
	return strings.EqualFold(a.String(), b.String())
}

// Less implements Snap!'s "<" block: numeric when possible, otherwise
// case-insensitive lexicographic.
func Less(a, b Value) (bool, error) {
	na, errA := ToNumber(a)
	nb, errB := ToNumber(b)
	if errA == nil && errB == nil {
		return na < nb, nil
	}
	sa := strings.ToLower(a.String())
	sb := strings.ToLower(b.String())
	return sa < sb, nil
}

// Greater implements Snap!'s ">" block.
func Greater(a, b Value) (bool, error) {
	lt, err := Less(b, a)
	return lt, err
}
