package value

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// hasHexPrefix reports whether s (optionally signed) is a hexadecimal
// literal, which ParseFloat accepts but Snap! does not.
func hasHexPrefix(s string) bool {
	if len(s) > 0 && (s[0] == '+' || s[0] == '-') {
		s = s[1:]
	}
	return len(s) >= 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')
}

// ToNumber coerces a value to a Number following Snap!'s (JavaScript's)
// loose rules: numbers pass through, booleans become 0/1, numeric text
// parses, and everything else is an error (Snap! shows a red halo).
func ToNumber(v Value) (Number, error) {
	switch x := v.(type) {
	case nil:
		return 0, nil
	case Number:
		return x, nil
	case Bool:
		if x {
			return 1, nil
		}
		return 0, nil
	case Text:
		return ParseNumber(string(x))
	case Nothing:
		return 0, nil
	default:
		return 0, fmt.Errorf("expecting a number but getting a %s", v.Kind())
	}
}

// ParseNumber parses text as a Snap! number: ToNumber's Text case without
// the boxing, for engine fast paths iterating raw string columns.
// strconv.ParseFloat is looser than Snap!'s number syntax: it accepts
// "Inf"/"Infinity"/"NaN" (any case) and hexadecimal floats like "0x1p4".
// Snap! treats all of those as plain text — and a non-finite bound
// reaching a list builder is how a request used to OOM the process — so
// they are rejected here with the same wording every tier shares.
func ParseNumber(s string) (Number, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil || math.IsInf(f, 0) || math.IsNaN(f) || hasHexPrefix(s) {
		return 0, fmt.Errorf("expecting a number but getting text %q", s)
	}
	return Number(f), nil
}

// ToBool coerces a value to a Bool. Snap! accepts booleans and the texts
// "true"/"false"; everything else errors.
func ToBool(v Value) (Bool, error) {
	switch x := v.(type) {
	case nil:
		return false, nil
	case Bool:
		return x, nil
	case Text:
		switch strings.ToLower(strings.TrimSpace(string(x))) {
		case "true":
			return true, nil
		case "false":
			return false, nil
		}
		return false, fmt.Errorf("expecting a boolean but getting text %q", string(x))
	case Nothing:
		return false, nil
	default:
		return false, fmt.Errorf("expecting a boolean but getting a %s", v.Kind())
	}
}

// ToText coerces any value to its textual rendering. ToText never fails;
// every value has a display string.
func ToText(v Value) Text {
	if v == nil {
		return ""
	}
	return Text(v.String())
}

// ToList coerces v to a *List. Lists pass through; any other value becomes
// a one-item list, mirroring how Snap!'s list-ingesting blocks behave.
func ToList(v Value) *List {
	if l, ok := v.(*List); ok {
		return l
	}
	if v == nil {
		return NewList()
	}
	if _, ok := v.(Nothing); ok {
		return NewList()
	}
	return NewList(v)
}

// ToInt coerces to a Go int, erroring when the number is not integral.
func ToInt(v Value) (int, error) {
	n, err := ToNumber(v)
	if err != nil {
		return 0, err
	}
	if !n.IsInt() {
		return 0, fmt.Errorf("expecting a whole number but getting %s", n)
	}
	return int(n), nil
}

// IsNothing reports whether v is absent (nil or Nothing).
func IsNothing(v Value) bool {
	if v == nil {
		return true
	}
	_, ok := v.(Nothing)
	return ok
}
