package value

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestRangeTable(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		name           string
		from, to, step float64
		want           string
	}{
		{"ascending", 1, 5, 1, "[1 2 3 4 5]"},
		{"descending", 5, 1, -1, "[5 4 3 2 1]"},
		{"step-zero-defaults-to-one", 1, 3, 0, "[1 2 3]"},
		{"from-equals-to", 7, 7, 1, "[7]"},
		{"empty-ascending", 5, 1, 1, "[]"},
		{"fractional-step", 0, 1, 0.5, "[0 0.5 1]"},
		{"nan-from", math.NaN(), 5, 1, "[]"},
		{"nan-to", 1, math.NaN(), 1, "[]"},
		{"inf-to", 1, inf, 1, "[]"},
		{"neg-inf-from", -inf, 5, 1, "[]"},
		{"inf-step", 1, 5, inf, "[]"},
		{"nan-step", 1, 5, math.NaN(), "[]"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			l := Range(c.from, c.to, c.step)
			if got := l.String(); got != c.want {
				t.Fatalf("Range(%v, %v, %v) = %s, want %s", c.from, c.to, c.step, got, c.want)
			}
			if !l.Columnar() {
				t.Fatal("Range result is not columnar")
			}
		})
	}
}

func TestColumnarConstructors(t *testing.T) {
	fl := FromFloats([]float64{1.5, 2, 3})
	if !fl.Columnar() || fl.String() != "[1.5 2 3]" {
		t.Fatalf("FromFloats = %s (columnar=%v)", fl, fl.Columnar())
	}
	sl := FromStrings([]string{"a", "b"})
	if !sl.Columnar() || sl.String() != "[a b]" {
		t.Fatalf("FromStrings = %s (columnar=%v)", sl, sl.Columnar())
	}
	il := FromInts([]int{4, 5, 6})
	if !il.Columnar() || il.String() != "[4 5 6]" {
		t.Fatalf("FromInts = %s (columnar=%v)", il, il.Columnar())
	}
	// FromFloats copies its argument; AdoptFloats takes ownership.
	src := []float64{1, 2}
	cp := FromFloats(src)
	src[0] = 99
	if cp.String() != "[1 2]" {
		t.Fatalf("FromFloats aliased its argument: %s", cp)
	}
	if v := AdoptFloats(nil); v.Len() != 0 || !v.Columnar() {
		t.Fatalf("AdoptFloats(nil) = %s (columnar=%v)", v, v.Columnar())
	}
	if v := AdoptStrings(nil); v.Len() != 0 || !v.Columnar() {
		t.Fatalf("AdoptStrings(nil) = %s (columnar=%v)", v, v.Columnar())
	}
}

func TestAdoptSliceSniffsColumns(t *testing.T) {
	long := make([]Value, adoptColumnMin)
	for i := range long {
		long[i] = Number(float64(i))
	}
	if l := AdoptSlice(long); !l.Columnar() {
		t.Fatal("long homogeneous numeric slice did not columnarize")
	}
	short := make([]Value, adoptColumnMin-1)
	for i := range short {
		short[i] = Number(float64(i))
	}
	if l := AdoptSlice(short); l.Columnar() {
		t.Fatal("short slice columnarized; want boxed below the threshold")
	}
	mixed := make([]Value, adoptColumnMin)
	for i := range mixed {
		mixed[i] = Number(float64(i))
	}
	mixed[adoptColumnMin-1] = Text("x")
	if l := AdoptSlice(mixed); l.Columnar() {
		t.Fatal("mixed slice columnarized")
	}
	texts := make([]Value, adoptColumnMin)
	for i := range texts {
		texts[i] = Text("w")
	}
	if l := AdoptSlice(texts); !l.Columnar() {
		t.Fatal("long homogeneous text slice did not columnarize")
	}
}

func TestColumnarMutationInPlace(t *testing.T) {
	l := Range(1, 5, 1)
	if err := l.SetItem(2, Number(20)); err != nil {
		t.Fatal(err)
	}
	l.Add(Number(6))
	if err := l.InsertAt(1, Number(0)); err != nil {
		t.Fatal(err)
	}
	if err := l.DeleteAt(4); err != nil {
		t.Fatal(err)
	}
	if !l.Columnar() {
		t.Fatal("conforming mutations should keep the column backing")
	}
	if got := l.String(); got != "[0 1 20 4 5 6]" {
		t.Fatalf("after mutations: %s", got)
	}
	l.Clear()
	if l.Len() != 0 || !l.Columnar() {
		t.Fatalf("Clear: len=%d columnar=%v", l.Len(), l.Columnar())
	}
}

func TestColumnarUpgradeOnNonConforming(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(l *List) error
		want   string
	}{
		{"set-text", func(l *List) error { return l.SetItem(2, Text("x")) }, "[1 x 3]"},
		{"add-bool", func(l *List) error { l.Add(Bool(true)); return nil }, "[1 2 3 true]"},
		{"insert-list", func(l *List) error { return l.InsertAt(1, NewList(Number(9))) }, "[[9] 1 2 3]"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			l := Range(1, 3, 1)
			if err := c.mutate(l); err != nil {
				t.Fatal(err)
			}
			if l.Columnar() {
				t.Fatal("non-conforming mutation should upgrade to boxed")
			}
			if got := l.String(); got != c.want {
				t.Fatalf("after upgrade: %s, want %s", got, c.want)
			}
		})
	}
}

func TestColumnarItemsMemoized(t *testing.T) {
	l := Range(1, 10, 1)
	a, b := l.Items(), l.Items()
	if len(a) != 10 || &a[0] != &b[0] {
		t.Fatal("Items() view not memoized across pure reads")
	}
	l.Add(Number(11))
	c := l.Items()
	if len(c) != 11 || c[10].String() != "11" {
		t.Fatalf("Items() after mutation = %v", c)
	}
	// The earlier snapshot is stale but internally consistent.
	if len(a) != 10 {
		t.Fatal("old snapshot changed length")
	}
}

func TestColumnarMutateDuringIteration(t *testing.T) {
	// MustItem reads the live representation, so mutations made while
	// iterating by index are visible — including a mid-iteration upgrade.
	l := Range(1, 4, 1)
	var got []string
	for i := 1; i <= l.Len(); i++ {
		if i == 2 {
			if err := l.SetItem(3, Text("x")); err != nil {
				t.Fatal(err)
			}
		}
		got = append(got, l.MustItem(i).String())
	}
	if s := strings.Join(got, " "); s != "1 2 x 4" {
		t.Fatalf("iteration saw %q, want %q", s, "1 2 x 4")
	}
	if l.Columnar() {
		t.Fatal("upgrade did not happen")
	}
}

func TestColumnarCloneAndEqual(t *testing.T) {
	l := Range(1, 40, 1)
	c := l.Clone().(*List)
	if !c.Columnar() || !Equal(l, c) {
		t.Fatalf("clone: columnar=%v equal=%v", c.Columnar(), Equal(l, c))
	}
	if err := c.SetItem(1, Number(99)); err != nil {
		t.Fatal(err)
	}
	if l.MustItem(1).String() != "1" {
		t.Fatal("clone shares the column with the original")
	}
	// A boxed list with the same contents compares equal across
	// representations, including numeric text against numbers.
	boxed := NewList()
	for i := 1; i <= 40; i++ {
		boxed.Add(Text(fmt.Sprintf("%d", i)))
	}
	if !Equal(l, boxed) {
		t.Fatal("columnar [1..40] != boxed [\"1\"..\"40\"]")
	}
	boxed.Add(Text("41"))
	if Equal(l, boxed) {
		t.Fatal("lists of different length compare equal")
	}
}

func TestCycleSafetyAfterUpgrade(t *testing.T) {
	l := Range(1, 3, 1)
	l.Add(l) // non-conforming: upgrades, then creates a cycle
	if l.Columnar() {
		t.Fatal("self-append should have upgraded")
	}
	if got := l.String(); got != "[1 2 3 [...]]" {
		t.Fatalf("cyclic render = %s", got)
	}
	c := l.Clone().(*List)
	if c.MustItem(4) != Value(c) {
		t.Fatal("clone did not preserve the cycle onto itself")
	}
	if !Equal(l, c) {
		t.Fatal("cyclic list != its clone")
	}
}

func TestColumnarContainsIndexOf(t *testing.T) {
	l := FromFloats([]float64{1, 2.5, 3, math.NaN()})
	if i := l.IndexOf(Number(2.5)); i != 2 {
		t.Fatalf("IndexOf(2.5) = %d", i)
	}
	if i := l.IndexOf(Text("3")); i != 3 {
		t.Fatalf("IndexOf(\"3\") = %d (numeric text should match)", i)
	}
	// NaN never equals NaN numerically, but its display string does.
	if l.Contains(Number(math.NaN())) {
		t.Fatal("NaN compared numerically equal")
	}
	if i := l.IndexOf(Text("NaN")); i != 4 {
		t.Fatalf("IndexOf(\"NaN\") = %d (string fallback should match)", i)
	}
	s := FromStrings([]string{"a", "B", "3"})
	if i := s.IndexOf(Text("b")); i != 2 {
		t.Fatalf("case-insensitive IndexOf = %d", i)
	}
	if i := s.IndexOf(Number(3)); i != 3 {
		t.Fatalf("IndexOf(3) over text column = %d", i)
	}
}

func TestColumnarFloatsStrings(t *testing.T) {
	l := FromStrings([]string{"1", " 2 ", "x"})
	_, err := l.Floats()
	if err == nil || err.Error() != `item 3: expecting a number but getting text "x"` {
		t.Fatalf("Floats error = %v", err)
	}
	n := FromFloats([]float64{1, 2.5})
	fs, err := n.Floats()
	if err != nil || len(fs) != 2 || fs[1] != 2.5 {
		t.Fatalf("Floats = %v, %v", fs, err)
	}
	fs[0] = 99 // returned slice is a private copy
	if n.MustItem(1).String() != "1" {
		t.Fatal("Floats aliased the column")
	}
	if got := n.Strings(); got[1] != "2.5" {
		t.Fatalf("Strings = %v", got)
	}
	ss := l.Strings()
	ss[0] = "mut"
	if l.MustItem(1).String() != "1" {
		t.Fatal("Strings aliased the column")
	}
}

func TestColumnarSliceAppend(t *testing.T) {
	l := Range(1, 10, 1)
	s, err := l.Slice(3, 5)
	if err != nil || s.String() != "[3 4 5]" || !s.Columnar() {
		t.Fatalf("Slice = %s columnar=%v err=%v", s, s.Columnar(), err)
	}
	s.Append(Range(6, 7, 1))
	if s.String() != "[3 4 5 6 7]" || !s.Columnar() {
		t.Fatalf("Append same-column = %s columnar=%v", s, s.Columnar())
	}
	s.Append(FromStrings([]string{"x"}))
	if s.String() != "[3 4 5 6 7 x]" || s.Columnar() {
		t.Fatalf("Append mixed = %s columnar=%v", s, s.Columnar())
	}
	// Self-append, both representations.
	n := Range(1, 2, 1)
	n.Append(n)
	if n.String() != "[1 2 1 2]" {
		t.Fatalf("columnar self-append = %s", n)
	}
}

// TestColumnarConcurrentReads is the -race guard for the shared-literal
// scenario: cached projects share one parsed columnar list across
// sessions, and concurrent readers may all demand the memoized boxed view
// at once. Every read path must stay write-free (the view is published
// through an atomic pointer), so this test passes under -race.
func TestColumnarConcurrentReads(t *testing.T) {
	l := Range(1, 2048, 1)
	want := l.String()
	other := Range(1, 2048, 1)
	const readers = 16
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			view := l.Items()
			if len(view) != 2048 {
				t.Errorf("view length %d", len(view))
			}
			if got := l.MustItem(seed + 1).String(); got == "" {
				t.Error("empty item")
			}
			if !Equal(l, other) {
				t.Error("Equal diverged")
			}
			if got := l.String(); got != want {
				t.Error("String diverged")
			}
			if _, err := l.Floats(); err != nil {
				t.Error(err)
			}
			c := l.Clone().(*List)
			if err := c.SetItem(1, Text("private")); err != nil {
				t.Error(err)
			}
		}(r)
	}
	wg.Wait()
	if !l.Columnar() || l.Len() != 2048 || l.String() != want {
		t.Fatalf("shared list changed: columnar=%v len=%d", l.Columnar(), l.Len())
	}
}
