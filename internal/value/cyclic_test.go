package value

import "testing"

// Block programs can legally make a list contain itself (add l to l), so
// every deep walker over values — rendering, structured clone, equality —
// must terminate on cycles. These used to blow the stack; the crash was
// found by the evolutionary stress soak (see docs/TESTING.md).

func selfList() *List {
	l := NewList(Num(1), Num(2))
	l.Add(l)
	return l
}

func TestCyclicListString(t *testing.T) {
	if got, want := selfList().String(), "[1 2 [...]]"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	// A cycle deeper than the root: a → b → a.
	a := NewList(Num(1))
	b := NewList(a)
	a.Add(b)
	if got, want := a.String(), "[1 [[...]]]"; got != want {
		t.Errorf("nested cycle String() = %q, want %q", got, want)
	}
	// Sharing without a cycle is not a back-reference: both occurrences
	// render in full.
	x := NewList(Num(7))
	root := NewList(x, x)
	if got, want := root.String(), "[[7] [7]]"; got != want {
		t.Errorf("DAG String() = %q, want %q", got, want)
	}
}

func TestCyclicListClone(t *testing.T) {
	l := selfList()
	c := l.Clone().(*List)
	if c == l {
		t.Fatal("clone is the original")
	}
	if c.Len() != 3 {
		t.Fatalf("clone Len = %d, want 3", c.Len())
	}
	// The clone's self-reference points at the clone, not the original.
	if c.MustItem(3) != Value(c) {
		t.Errorf("clone's cycle points at %p, want the clone %p", c.MustItem(3), c)
	}
	// Aliasing inside a clone is preserved, like a structured clone.
	x := NewList(Num(7))
	root := NewList(x, x)
	cr := root.Clone().(*List)
	if cr.MustItem(1) != cr.MustItem(2) {
		t.Error("clone split a shared sublist into two copies")
	}
	if cr.MustItem(1) == Value(x) {
		t.Error("clone shares the original's sublist")
	}
}

func TestCyclicListEqual(t *testing.T) {
	a, b := selfList(), selfList()
	if !Equal(a, a) {
		t.Error("a cyclic list must equal itself")
	}
	if !Equal(a, b) {
		t.Error("structurally identical cycles must be equal")
	}
	if !Equal(a, a.Clone()) {
		t.Error("a cyclic list must equal its clone")
	}
	c := selfList()
	c.SetItem(2, Num(9))
	if Equal(a, c) {
		t.Error("cycles with different scalar items must differ")
	}
	if Equal(a, NewList(Num(1), Num(2), NewList(Num(1)))) {
		t.Error("a cycle must not equal an acyclic list of the same length")
	}
}
