package repro

// The benchmark harness: one benchmark per figure/table of the paper (the
// E-numbers of DESIGN.md's experiment index) plus the ablation benches for
// the design choices DESIGN.md calls out. Absolute numbers are
// host-dependent; the assertions that the *values* match the paper live in
// the package test suites — these benches time the reproduction paths and
// print the derived quantities (timesteps, imbalance, speedup) once per
// run.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"

	"testing"

	"repro/internal/bench"
	"repro/internal/blocks"
	"repro/internal/codegen"
	"repro/internal/demos"
	"repro/internal/dist"
	"repro/internal/interp"
	"repro/internal/mapreduce"
	"repro/internal/noaa"
	"repro/internal/omp"
	"repro/internal/runtime"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/value"
	"repro/internal/workers"
)

// BenchmarkE1SeqMap times Figure 4's sequential map block.
func BenchmarkE1SeqMap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := demos.EvalBlock(demos.Fig4SeqMap()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2ParallelMap times the parallelMap block of Figures 5–6 across
// worker counts, on the same 200-element list every PR has measured so the
// committed baselines stay comparable. Note the wall-clock caveat: the
// bench container exposes a single CPU, so ns/op cannot drop as workers
// are added — what this series can show is the absolute cost of the block
// and how little adding workers costs when there is no parallel hardware
// to use them (the E10 vspeedup metric carries the scaling evidence).
func BenchmarkE2ParallelMap(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			blk := demos.Fig5ParallelMap(
				blocks.Numbers(blocks.Num(1), blocks.Num(200)),
				blocks.Num(float64(w)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := demos.EvalBlock(blk); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE3ConcessionParallel runs the Figure 9 parallel concession
// stand; the metric "timesteps" must be 3.
func BenchmarkE3ConcessionParallel(b *testing.B) {
	var timer int64
	for i := 0; i < b.N; i++ {
		res, err := demos.RunConcession(true)
		if err != nil {
			b.Fatal(err)
		}
		timer = res.Timer
	}
	b.ReportMetric(float64(timer), "timesteps")
}

// BenchmarkE4ConcessionSequential runs the Figure 10 sequential stand; the
// metric must be 12.
func BenchmarkE4ConcessionSequential(b *testing.B) {
	var timer int64
	for i := 0; i < b.N; i++ {
		res, err := demos.RunConcession(false)
		if err != nil {
			b.Fatal(err)
		}
		timer = res.Timer
	}
	b.ReportMetric(float64(timer), "timesteps")
}

// BenchmarkE5WordCount times the Figures 11–12 word count, block and
// engine paths.
func BenchmarkE5WordCount(b *testing.B) {
	b.Run("block", func(b *testing.B) {
		blk := demos.WordCountBlock("the quick brown fox jumps over the lazy dog the end")
		for i := 0; i < b.N; i++ {
			if _, err := demos.EvalBlock(blk); err != nil {
				b.Fatal(err)
			}
		}
	})
	words := value.FromStrings(strings.Fields(strings.Repeat("alpha beta gamma delta beta ", 200)))
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("engine/words=1000/workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := mapreduce.Run(words, mapreduce.WordCount,
					mapreduce.SumReduce, mapreduce.Config{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE6Climate times the Figure 13 climate averaging over NOAA-scale
// data.
func BenchmarkE6Climate(b *testing.B) {
	for _, readings := range []int{1000, 10000} {
		days := readings / 10
		ds := noaa.Generate(noaa.Config{
			Stations: 10, StartYear: 2000, EndYear: 2000,
			DaysPerYear: days, Seed: 3,
		})
		temps := ds.TempsF()
		b.Run(fmt.Sprintf("readings=%d", temps.Len()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := mapreduce.Run(temps, mapreduce.FahrenheitToCelsius,
					mapreduce.AvgReduce, mapreduce.Config{Workers: 4}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE7Listing5 times the Snap!→C translation of Figure 16.
func BenchmarkE7Listing5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := codegen.Listing5(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE8OpenMPGen times the mapReduce→OpenMP artifact generation of
// Figures 18–20.
func BenchmarkE8OpenMPGen(b *testing.B) {
	blk := blocks.MapReduce(
		blocks.RingOf(blocks.Quotient(
			blocks.Product(blocks.Num(5), blocks.Difference(blocks.Empty(), blocks.Num(32))),
			blocks.Num(9))),
		blocks.RingOf(blocks.Quotient(
			blocks.Combine(blocks.Empty(), blocks.RingOf(blocks.Sum(blocks.Empty(), blocks.Empty()))),
			blocks.LengthOf(blocks.Empty()))),
		blocks.ListOf(blocks.Num(32), blocks.Num(212)))
	for i := 0; i < b.N; i++ {
		if _, err := codegen.MapReduceFiles(blk, []float64{32, 212}, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9Survey times the §5 tabulation.
func BenchmarkE9Survey(b *testing.B) {
	out, err := bench.E9()
	if err != nil || out == "" {
		b.Fatal(err)
	}
	e, _ := bench.Lookup("e9")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE10Scaling measures the worker pool under skewed element costs
// for each assignment policy, reporting virtual speedup (total cost over
// the busiest worker) as the policy-quality metric.
func BenchmarkE10Scaling(b *testing.B) {
	const n = 2000
	in := value.Range(1, n, 1)
	burn := func(v value.Value) (value.Value, error) {
		x, _ := value.ToNumber(v)
		acc := 0.0
		for i := 0; i < int(x); i++ {
			acc += float64(i)
		}
		_ = acc
		return x, nil
	}
	cost := func(i int) int64 { return int64(i + 1) }
	for _, policy := range []workers.Assignment{workers.Block, workers.Interleaved, workers.Dynamic} {
		for _, w := range []int{2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers=%d", policy, w), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					p := workers.New(in, workers.Options{
						MaxWorkers: w, Assignment: policy, Cost: cost,
					})
					if _, err := p.Map(burn).Wait(); err != nil {
						b.Fatal(err)
					}
				}
				max, costs := workers.VirtualMakespan(n, w, policy, cost)
				var total int64
				for _, c := range costs {
					total += c
				}
				b.ReportMetric(float64(total)/float64(max), "vspeedup")
			})
		}
	}
}

// BenchmarkE11Schedules ablates the omp loop schedules on skewed work.
func BenchmarkE11Schedules(b *testing.B) {
	const n, threads = 2000, 4
	for _, cfg := range []omp.ForConfig{
		{Threads: threads, Schedule: omp.Static},
		{Threads: threads, Schedule: omp.Static, Chunk: 64},
		{Threads: threads, Schedule: omp.Dynamic, Chunk: 16},
		{Threads: threads, Schedule: omp.Guided},
	} {
		name := cfg.Schedule.String()
		if cfg.Chunk > 0 {
			name = fmt.Sprintf("%s_chunk%d", name, cfg.Chunk)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				omp.For(n, cfg, func(i, tid int) {
					acc := 0.0
					for k := 0; k < i; k++ {
						acc += float64(k)
					}
					_ = acc
				})
			}
			max, costs := omp.SimulateMakespan(n, cfg, func(i int) int64 { return int64(i) })
			var total int64
			for _, c := range costs {
				total += c
			}
			b.ReportMetric(float64(total)/float64(max), "vspeedup")
		})
	}
}

// BenchmarkE12Batch times the batch workflow of §6.3.
func BenchmarkE12Batch(b *testing.B) {
	e, _ := bench.Lookup("e12")
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE13Interleaving times the §2 concurrency demonstration.
func BenchmarkE13Interleaving(b *testing.B) {
	e, _ := bench.Lookup("e13")
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE14DistMapReduce times the inter-node MapReduce across node
// counts, reporting shuffle volume.
func BenchmarkE14DistMapReduce(b *testing.B) {
	in := value.FromStrings(strings.Fields(strings.Repeat("alpha beta gamma delta ", 250)))
	for _, nodes := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			var shuffled int64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, stats, err := dist.MapReduce(in, mapreduce.WordCount,
					mapreduce.SumReduce, dist.Config{Nodes: nodes, WorkersPerNode: 2})
				if err != nil {
					b.Fatal(err)
				}
				shuffled = stats.ShuffleMessages
			}
			b.ReportMetric(float64(shuffled), "shuffled")
		})
	}
}

// BenchmarkE15Contrast times the three-dialect generation of §6.1.
func BenchmarkE15Contrast(b *testing.B) {
	e, _ := bench.Lookup("e15")
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE16Scheduling times the FIFO vs backfill job-mix comparison.
func BenchmarkE16Scheduling(b *testing.B) {
	e, _ := bench.Lookup("e16")
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE17RepeatedRun times the classroom workload the content-
// addressed program cache targets: the same project body POSTed to
// /v1/run over and over. The project is elaboration-heavy (dozens of
// sprites full of message-hat scripts that parse and lint but never run)
// and its green-flag work is trivial, so the cached/uncached split
// isolates the parse+lint share of a request. "uncached" disables the
// cache (CacheBytes < 0) — the pre-cache server, re-elaborating per
// request.
func BenchmarkE17RepeatedRun(b *testing.B) {
	var src strings.Builder
	src.WriteString("(project \"repeat\"\n")
	src.WriteString("  (sprite \"Main\" (when green-flag (do (say \"hi\"))))\n")
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&src, "  (sprite \"S%d\" (when (receive \"m%d\") (do", i, i)
		for j := 0; j < 12; j++ {
			fmt.Fprintf(&src, " (say (join \"v%d-\" (+ %d %d)))", j, i, j)
		}
		src.WriteString(")))\n")
	}
	src.WriteString(")")
	body, err := json.Marshal(map[string]string{"project": src.String()})
	if err != nil {
		b.Fatal(err)
	}

	for _, mode := range []struct {
		name       string
		cacheBytes int64
	}{{"cached", 0}, {"uncached", -1}} {
		b.Run(mode.name, func(b *testing.B) {
			srv := server.New(server.Config{
				Runtime:    runtime.Config{MaxConcurrent: 4, MaxQueue: 8},
				CacheBytes: mode.cacheBytes,
			})
			h := srv.Handler()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				req := httptest.NewRequest("POST", "/v1/run", bytes.NewReader(body))
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != 200 {
					b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
				}
			}
		})
	}
}

// BenchmarkE18RoutedRun prices the shard-router hop: the same cached
// repeat-run workload as E17, submitted directly to one snapserved
// versus through snapshardd's router over three real loopback backends.
// "direct" is E17/cached re-measured in this harness (in-process handler,
// no network); "routed" adds the router's placement hash, the admission
// gate, and a full proxied HTTP round trip to the owning backend. The
// body is identical every iteration, so the routed path also pins cache
// affinity under load: one backend elaborates once, everything else is
// hits.
func BenchmarkE18RoutedRun(b *testing.B) {
	var src strings.Builder
	src.WriteString("(project \"routed\"\n")
	src.WriteString("  (sprite \"Main\" (when green-flag (do (say \"hi\"))))\n")
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&src, "  (sprite \"S%d\" (when (receive \"m%d\") (do", i, i)
		for j := 0; j < 12; j++ {
			fmt.Fprintf(&src, " (say (join \"v%d-\" (+ %d %d)))", j, i, j)
		}
		src.WriteString(")))\n")
	}
	src.WriteString(")")
	body, err := json.Marshal(map[string]string{"project": src.String()})
	if err != nil {
		b.Fatal(err)
	}
	newBackend := func() *server.Server {
		return server.New(server.Config{Runtime: runtime.Config{MaxConcurrent: 4, MaxQueue: 8}})
	}
	drive := func(b *testing.B, h http.Handler) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req := httptest.NewRequest("POST", "/v1/run", bytes.NewReader(body))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != 200 {
				b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
			}
		}
	}

	b.Run("direct", func(b *testing.B) {
		drive(b, newBackend().Handler())
	})
	b.Run("routed", func(b *testing.B) {
		urls := make([]string, 3)
		for i := range urls {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			hs := &http.Server{Handler: newBackend().Handler()}
			go hs.Serve(ln) //nolint:errcheck
			defer hs.Close()
			urls[i] = "http://" + ln.Addr().String()
		}
		rt, err := shard.New(shard.Config{Backends: urls})
		if err != nil {
			b.Fatal(err)
		}
		defer rt.Close()
		drive(b, rt.Handler())
	})
}

// BenchmarkSliceLength ablates the interpreter's time-slice length (the
// DefaultSliceOps design choice): longer slices amortize scheduling but
// coarsen interleaving.
func BenchmarkSliceLength(b *testing.B) {
	build := func() *interp.Machine {
		p := blocks.NewProject("slice")
		p.Globals["n"] = value.Number(0)
		for s := 0; s < 4; s++ {
			sp := p.AddSprite(blocks.NewSprite(fmt.Sprintf("S%d", s)))
			sp.AddScript(blocks.HatGreenFlag, "", blocks.NewScript(
				blocks.Repeat(blocks.Num(200), blocks.Body(
					blocks.ChangeVar("n", blocks.Num(1)))),
			))
		}
		return interp.NewMachine(p, nil)
	}
	for _, slice := range []int{10, 100, 1000, 10000} {
		b.Run(fmt.Sprintf("sliceOps=%d", slice), func(b *testing.B) {
			var rounds int64
			for i := 0; i < b.N; i++ {
				m := build()
				m.SliceOps = slice
				m.GreenFlag()
				if err := m.Run(0); err != nil {
					b.Fatal(err)
				}
				rounds = m.Round()
			}
			b.ReportMetric(float64(rounds), "rounds")
		})
	}
}

// BenchmarkInterpreterThroughput measures raw evaluator speed: block
// operations per second on a tight counting loop.
func BenchmarkInterpreterThroughput(b *testing.B) {
	script := blocks.NewScript(
		blocks.DeclareLocal("n"),
		blocks.SetVar("n", blocks.Num(0)),
		blocks.Repeat(blocks.Num(1000), blocks.Body(
			blocks.ChangeVar("n", blocks.Num(1)))),
		blocks.Report(blocks.Var("n")),
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := interp.NewMachine(blocks.NewProject("tp"), nil)
		v, err := m.RunScript(script)
		if err != nil {
			b.Fatal(err)
		}
		if v.String() != "1000" {
			b.Fatalf("loop result %s", v)
		}
	}
}

// BenchmarkMapReduceEngine scales the engine across input sizes and worker
// counts.
func BenchmarkMapReduceEngine(b *testing.B) {
	for _, n := range []int{100, 10000} {
		in := value.Range(1, float64(n), 1)
		for _, w := range []int{1, 4} {
			b.Run(fmt.Sprintf("n=%d/workers=%d", n, w), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := mapreduce.Run(in, mapreduce.FahrenheitToCelsius,
						mapreduce.AvgReduce, mapreduce.Config{Workers: w}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
